"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing substrate failures
(:class:`SimulationError`), malformed wire data (:class:`WireFormatError`),
and configuration mistakes (:class:`ConfigurationError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "RankFailedError",
    "WireFormatError",
    "PartitionError",
    "RenderError",
    "CompositingError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid run/machine/camera configuration was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event cluster simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Every live rank is blocked on communication and no pair matches.

    Carries a human-readable summary of what each rank was blocked on so
    that protocol bugs in compositing methods are diagnosable.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = "; ".join(f"rank {r}: {what}" for r, what in sorted(blocked.items()))
        super().__init__(f"simulated cluster deadlocked ({len(blocked)} ranks blocked): {detail}")


class RankFailedError(SimulationError):
    """A rank's program raised; wraps the original exception."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")


class WireFormatError(ReproError, ValueError):
    """A serialized compositing message failed to parse or validate."""


class PartitionError(ReproError, ValueError):
    """A volume could not be partitioned as requested."""


class RenderError(ReproError, RuntimeError):
    """The ray caster was given inconsistent geometry."""


class CompositingError(ReproError, RuntimeError):
    """A compositing method violated one of its invariants."""
