"""Golden-image regression tests.

The renderer, transfer functions and phantoms are all deterministic, so
small reference renders are checked byte-for-byte against files in
``tests/data/``.  Any drift in the datasets, camera maths, sampling
grid or compositing of the final gray conversion shows up here first.

To regenerate after an *intentional* change::

    python - <<'PY'
    from repro.volume import make_dataset, PAPER_DATASETS
    from repro.render import Camera, render_full
    from repro.render.reference import luminance
    from repro.volume.io import to_gray8, write_pgm
    for ds in PAPER_DATASETS:
        vol, tf = make_dataset(ds, (32, 32, 16))
        cam = Camera(width=48, height=48, volume_shape=vol.shape,
                     rot_x=20, rot_y=30)
        write_pgm(f"tests/data/golden_{ds}.pgm",
                  to_gray8(luminance(render_full(vol, tf, cam)), gain=2.0))
    PY
"""

import os

import numpy as np
import pytest

from repro.render.camera import Camera
from repro.render.raycast import render_full
from repro.render.reference import luminance
from repro.volume.datasets import PAPER_DATASETS, make_dataset
from repro.volume.io import read_pgm, to_gray8

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def render_golden(dataset: str) -> np.ndarray:
    volume, transfer = make_dataset(dataset, (32, 32, 16))
    camera = Camera(
        width=48, height=48, volume_shape=volume.shape, rot_x=20, rot_y=30
    )
    image = render_full(volume, transfer, camera)
    return to_gray8(luminance(image), gain=2.0)


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_render_matches_golden(dataset):
    golden = read_pgm(os.path.join(DATA_DIR, f"golden_{dataset}.pgm"))
    fresh = render_golden(dataset)
    assert fresh.shape == golden.shape
    assert np.array_equal(fresh, golden), (
        f"{dataset} render drifted from the checked-in golden image "
        f"({int((fresh != golden).sum())} differing pixels); see the module "
        "docstring for how to regenerate intentionally"
    )


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_golden_images_nontrivial(dataset):
    golden = read_pgm(os.path.join(DATA_DIR, f"golden_{dataset}.pgm"))
    assert int(golden.max()) > 16  # visibly non-empty
    assert int((golden > 0).sum()) > 50


def test_parallel_composite_matches_golden():
    """End to end: the full 8-rank BSBRC pipeline lands on the same
    golden bytes as the direct sequential render."""
    from repro.pipeline.config import RunConfig
    from repro.pipeline.system import SortLastSystem

    cfg = RunConfig(
        dataset="engine_low", method="bsbrc", num_ranks=8,
        image_size=48, volume_shape=(32, 32, 16),
    )
    result = SortLastSystem(cfg).run()
    gray = to_gray8(luminance(result.final_image), gain=2.0)
    golden = read_pgm(os.path.join(DATA_DIR, "golden_engine_low.pgm"))
    assert np.array_equal(gray, golden)
