"""LRU bound for the on-disk render cache (``REPRO_CACHE_MAX_BYTES``).

Covers the knob parser, eviction order (oldest mtime first, hits
protect entries), the just-stored exemption, non-entry files being left
alone, and the pipeline integration: a bounded cache dir stays under
its cap across renders while the render results stay correct.
"""

import os

import numpy as np
import pytest

from repro import perf
from repro.cache import (
    CACHE_LIMIT_ENV,
    cache_budget,
    enforce_cache_budget,
    parse_size,
    touch,
)
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem


def _entry(root, name, size, mtime):
    path = os.path.join(root, name)
    with open(path, "wb") as fh:
        fh.write(b"\0" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestParseSize:
    @pytest.mark.parametrize(
        "text,want",
        [
            ("1048576", 1048576),
            ("512k", 512 * 1024),
            ("2M", 2 * 1024**2),
            ("1g", 1024**3),
            ("1.5k", 1536),
            ("", None),
            ("  ", None),
            ("banana", None),
            ("0", None),
            ("-5", None),
        ],
    )
    def test_cases(self, text, want):
        assert parse_size(text) == want

    def test_budget_reads_the_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_LIMIT_ENV, "4k")
        assert cache_budget() == 4096
        monkeypatch.delenv(CACHE_LIMIT_ENV)
        assert cache_budget() is None


class TestEviction:
    def test_evicts_oldest_first_until_under_budget(self, tmp_path):
        root = str(tmp_path)
        old = _entry(root, "old.npz", 100, 1000.0)
        mid = _entry(root, "mid.npz", 100, 2000.0)
        new = _entry(root, "new.npz", 100, 3000.0)
        evicted = enforce_cache_budget(root, max_bytes=200)
        assert evicted == [old]
        assert not os.path.exists(old)
        assert os.path.exists(mid) and os.path.exists(new)
        # Tighter cap takes the next-oldest too.
        assert enforce_cache_budget(root, max_bytes=100) == [mid]

    def test_touch_on_hit_protects_an_entry(self, tmp_path):
        """A cache *hit* bumps recency: the re-read entry survives and a
        never-read newer entry goes instead — true LRU, not FIFO."""
        root = str(tmp_path)
        hit = _entry(root, "hit.npz", 100, 1000.0)
        cold = _entry(root, "cold.npz", 100, 2000.0)
        touch(hit)  # simulated read: now newer than `cold`
        assert enforce_cache_budget(root, max_bytes=100) == [cold]
        assert os.path.exists(hit)

    def test_keep_exempts_the_just_stored_entry(self, tmp_path):
        root = str(tmp_path)
        older = _entry(root, "older.npz", 100, 1000.0)
        stored = _entry(root, "stored.npz", 300, 500.0)  # oldest AND biggest
        evicted = enforce_cache_budget(root, max_bytes=250, keep=stored)
        assert stored not in evicted
        assert os.path.exists(stored)
        assert older in evicted

    def test_only_npz_entries_are_candidates(self, tmp_path):
        root = str(tmp_path)
        ckpt = _entry(root, "ckpt-run-r0-s1.pkl", 10_000, 100.0)
        note = _entry(root, "README.txt", 10_000, 100.0)
        entry = _entry(root, "entry.npz", 100, 200.0)
        assert enforce_cache_budget(root, max_bytes=50) == [entry]
        assert os.path.exists(ckpt) and os.path.exists(note)

    def test_no_budget_means_no_eviction(self, tmp_path, monkeypatch):
        root = str(tmp_path)
        _entry(root, "a.npz", 1000, 100.0)
        monkeypatch.delenv(CACHE_LIMIT_ENV, raising=False)
        assert enforce_cache_budget(root) == []
        monkeypatch.setenv(CACHE_LIMIT_ENV, "not-a-size")
        assert enforce_cache_budget(root) == []

    def test_missing_root_is_a_noop(self, tmp_path):
        assert enforce_cache_budget(str(tmp_path / "absent"), max_bytes=1) == []

    def test_evictions_are_counted(self, tmp_path):
        root = str(tmp_path)
        _entry(root, "a.npz", 100, 100.0)
        _entry(root, "b.npz", 100, 200.0)
        with perf.scope() as registry:
            enforce_cache_budget(root, max_bytes=50)
        assert registry.counter("cache.evictions") == 2


class TestPipelineIntegration:
    def test_bounded_cache_stays_capped_and_results_stay_right(
        self, tmp_path, monkeypatch
    ):
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        monkeypatch.setenv(CACHE_LIMIT_ENV, "64k")

        def run(rot_y):
            cfg = RunConfig(
                dataset="sphere", image_size=64, num_ranks=4,
                method="bsbrc", volume_shape=(32, 32, 16), rot_y=rot_y,
            )
            return SortLastSystem(cfg).run()

        results = [run(rot) for rot in (0.0, 15.0, 30.0, 45.0)]
        sizes = [
            os.path.getsize(os.path.join(cache_dir, name))
            for name in os.listdir(cache_dir)
            if name.endswith(".npz")
        ]
        assert sum(sizes) <= 64 * 1024
        # A capped (partially evicted) cache never changes pixels.
        monkeypatch.delenv("REPRO_CACHE_DIR")
        fresh = run(45.0)
        assert np.array_equal(
            results[-1].final_image.intensity, fresh.final_image.intensity
        )
