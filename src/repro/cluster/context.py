"""Per-rank communication/computation API handed to rank programs.

A rank program is an ``async def`` function taking a :class:`RankContext`.
The context exposes MPI-flavoured verbs (``send``/``recv``/``sendrecv``/
``barrier``) plus :meth:`compute` for charging modelled computation time,
and convenience charging helpers (:meth:`charge_over`, :meth:`charge_encode`,
...) that translate *operation counts* into seconds via the machine model
so algorithm code never hard-codes cost constants.

Example
-------
>>> async def program(ctx):
...     peer = ctx.rank ^ 1
...     data = await ctx.sendrecv(peer, b"x" * ctx.rank, tag=0)
...     await ctx.charge_over(100)
...     return len(data)
"""

from __future__ import annotations

import pickle
from typing import Any, Optional

from ..errors import ConfigurationError
from .events import (
    ANY_TAG,
    BarrierOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    RecvOp,
    SendOp,
    SendRecvOp,
    WaitOp,
)
from .model import MachineModel
from .stats import RankStats

__all__ = ["RankContext", "payload_nbytes"]


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload.

    ``bytes``/``bytearray``/``memoryview`` and numpy arrays report their
    true buffer size; ``None`` is a zero-byte control message.  Any other
    object is priced at its pickled size, like mpi4py's lowercase verbs.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # unpicklable: caller must size it
        raise ConfigurationError(
            f"cannot infer wire size of {type(payload).__name__}; pass nbytes= explicitly"
        ) from exc


class RankContext:
    """The view a single simulated rank has of the machine."""

    def __init__(self, simulator, proc):
        self._simulator = simulator
        self._proc = proc

    # ---- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._proc.rank

    @property
    def size(self) -> int:
        return self._simulator.num_ranks

    @property
    def model(self) -> MachineModel:
        return self._simulator.model

    @property
    def stats(self) -> RankStats:
        return self._proc.stats

    # ---- staging ------------------------------------------------------------
    def begin_stage(self, stage: int) -> None:
        """Route subsequent accounting into stage bucket ``stage``."""
        self._proc.current_stage = int(stage)

    @property
    def current_stage(self) -> int:
        return self._proc.current_stage

    # ---- computation ---------------------------------------------------------
    async def compute(self, seconds: float, *, kind: str = "compute", count: int = 0) -> None:
        """Advance this rank's clock by ``seconds`` of local computation."""
        await ComputeOp(seconds, kind=kind, count=count)

    async def charge_over(self, npixels: int) -> None:
        """Charge ``npixels`` over-operator composites (model ``To``)."""
        await ComputeOp(self.model.over_time(npixels), kind="over", count=npixels)

    async def charge_encode(self, npixels: int) -> None:
        """Charge an RLE scan of ``npixels`` pixels (model ``Tencode``)."""
        await ComputeOp(self.model.encode_time(npixels), kind="encode", count=npixels)

    async def charge_bound(self, npixels: int) -> None:
        """Charge a bounding-rect scan of ``npixels`` pixels (model ``Tbound``)."""
        await ComputeOp(self.model.bound_time(npixels), kind="bound", count=npixels)

    async def charge_pack(self, nbytes: int) -> None:
        """Charge packing ``nbytes`` into a message buffer (model ``tpack``)."""
        await ComputeOp(self.model.pack_time(nbytes), kind="pack", count=nbytes)

    def note(self, kind: str, count: int = 1) -> None:
        """Record a zero-cost named counter in the current stage bucket.

        Used by compositing methods to expose observed sparsity
        quantities (``a_rec``, ``a_opaque``, ``r_code``, ``a_send``,
        empty-rectangle events) for analytic-model cross-checks without
        affecting timing.
        """
        self._proc.bucket().add_counter(kind, count)

    # ---- point to point --------------------------------------------------------
    async def send(self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0):
        """Blocking send (rendezvous semantics, like ``MPI_Ssend``)."""
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        await SendOp(dst, payload, size, tag=tag)

    async def recv(self, src: int, *, tag: int = ANY_TAG) -> Any:
        """Blocking receive from ``src``; returns the payload."""
        self._check_peer(src)
        return await RecvOp(src, tag=tag)

    async def sendrecv(
        self, peer: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ) -> Any:
        """Full-duplex pairwise exchange; returns the peer's payload.

        This is the binary-swap primitive: deadlock-free by construction,
        each side pays ``Ts + incoming_bytes·Tc``.
        """
        self._check_peer(peer)
        if peer == self.rank:
            raise ConfigurationError(f"rank {self.rank} cannot sendrecv with itself")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return await SendRecvOp(peer, payload, size, tag=tag)

    # ---- nonblocking ---------------------------------------------------------------
    async def isend(
        self, dst: int, payload: Any, *, nbytes: Optional[int] = None, tag: int = 0
    ):
        """Nonblocking send; returns a :class:`~repro.cluster.events.Request`.

        The transfer runs in the background (serialized on the receiver's
        link); complete it with :meth:`wait`/:meth:`wait_all`.
        """
        self._check_peer(dst)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return await IsendOp(dst, payload, size, tag=tag)

    async def irecv(self, src: int, *, tag: int = 0):
        """Nonblocking receive; returns a Request whose payload is
        available after :meth:`wait`."""
        self._check_peer(src)
        return await IrecvOp(src, tag=tag)

    async def wait(self, request) -> Any:
        """Block until ``request`` completes; returns its payload (irecv)
        or ``None`` (isend)."""
        results = await WaitOp([request])
        return results[0]

    async def wait_all(self, requests) -> list:
        """Block until every request completes; returns payloads in order."""
        return await WaitOp(list(requests))

    # ---- collective ----------------------------------------------------------------
    async def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        await BarrierOp()

    # ---- misc --------------------------------------------------------------------
    def _check_peer(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ConfigurationError(
                f"peer rank {rank} out of range for a {self.size}-rank machine"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankContext(rank={self.rank}, size={self.size}, model={self.model.name})"
