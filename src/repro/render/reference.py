"""Sequential reference implementations (the compositing oracle).

Every parallel compositing method must produce the same final image as
folding the per-rank subimages together sequentially in depth order.
These helpers provide that oracle plus the uniprocessor full-volume
render used to validate the renderer itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..compositing.over import over_inplace
from ..errors import CompositingError
from .image import SubImage

__all__ = ["composite_sequential", "luminance"]


def composite_sequential(
    subimages: Sequence[SubImage], front_to_back: Sequence[int]
) -> SubImage:
    """Composite ``subimages`` in the given front-to-back rank order.

    Inputs are not mutated.  The fold runs back-to-front (equivalent by
    associativity) so each step is a single in-place *over*.
    """
    if len(front_to_back) != len(subimages):
        raise CompositingError(
            f"order names {len(front_to_back)} ranks but {len(subimages)} images given"
        )
    if sorted(front_to_back) != list(range(len(subimages))):
        raise CompositingError(f"order {front_to_back!r} is not a permutation")
    if not subimages:
        raise CompositingError("need at least one subimage")
    shape = subimages[0].shape
    for idx, img in enumerate(subimages):
        if img.shape != shape:
            raise CompositingError(f"subimage {idx} has shape {img.shape}, expected {shape}")

    acc = SubImage.blank(*shape)
    for rank in reversed(list(front_to_back)):
        img = subimages[rank]
        over_inplace(img.intensity, img.opacity, acc.intensity, acc.opacity)
    return acc


def luminance(image: SubImage, *, background: float = 0.0) -> np.ndarray:
    """Displayable grayscale: premultiplied intensity over a background."""
    return image.intensity + (1.0 - image.opacity) * background
