"""Tests for gather/bcast/allreduce built on the simulated network."""

import numpy as np
import pytest

from repro.cluster.collectives import allreduce, bcast, gather
from repro.cluster.model import IDEALIZED, MachineModel
from repro.cluster.simulator import Simulator
from repro.errors import RankFailedError


def run(num_ranks, program, model=IDEALIZED):
    return Simulator(num_ranks, model).run(program)


class TestGather:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 4, 8])
    def test_gather_to_zero(self, num_ranks):
        async def program(ctx):
            return await gather(ctx, ctx.rank * ctx.rank)

        result = run(num_ranks, program)
        assert result.returns[0] == [r * r for r in range(num_ranks)]
        assert all(v is None for v in result.returns[1:])

    def test_gather_nonzero_root(self):
        async def program(ctx):
            return await gather(ctx, chr(ord("a") + ctx.rank), root=2)

        result = run(4, program)
        assert result.returns[2] == ["a", "b", "c", "d"]
        assert result.returns[0] is None

    def test_gather_bad_root(self):
        async def program(ctx):
            await gather(ctx, 1, root=9)

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_gather_traffic_counted(self):
        model = MachineModel(name="m", ts=0, tc=1.0, to=0, tencode=0, tbound=0)

        async def program(ctx):
            await gather(ctx, b"x" * 10)

        result = run(4, program, model=model)
        assert result.rank_stats[0].bytes_recv == 30


class TestBcast:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 4, 5, 8, 16])
    def test_bcast_reaches_all(self, num_ranks):
        async def program(ctx):
            return await bcast(ctx, {"v": 42} if ctx.rank == 0 else None)

        result = run(num_ranks, program)
        assert all(r == {"v": 42} for r in result.returns)

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_any_root(self, root):
        async def program(ctx):
            return await bcast(ctx, "payload" if ctx.rank == root else None, root=root)

        result = run(4, program)
        assert all(r == "payload" for r in result.returns)

    def test_bcast_bad_root(self):
        async def program(ctx):
            await bcast(ctx, 1, root=-1)

        with pytest.raises(RankFailedError):
            run(2, program)


class TestAllreduce:
    @pytest.mark.parametrize("num_ranks", [1, 2, 4, 8])
    def test_sum_power_of_two(self, num_ranks):
        async def program(ctx):
            return await allreduce(ctx, ctx.rank + 1, lambda a, b: a + b)

        result = run(num_ranks, program)
        expected = num_ranks * (num_ranks + 1) // 2
        assert all(r == expected for r in result.returns)

    @pytest.mark.parametrize("num_ranks", [3, 5, 6, 7])
    def test_sum_non_power_of_two(self, num_ranks):
        async def program(ctx):
            return await allreduce(ctx, ctx.rank + 1, lambda a, b: a + b)

        result = run(num_ranks, program)
        expected = num_ranks * (num_ranks + 1) // 2
        assert all(r == expected for r in result.returns)

    def test_max_reduction(self):
        async def program(ctx):
            return await allreduce(ctx, (ctx.rank * 7) % 5, max)

        result = run(8, program)
        expected = max((r * 7) % 5 for r in range(8))
        assert all(r == expected for r in result.returns)

    def test_numpy_payloads(self):
        async def program(ctx):
            vec = np.full(4, float(ctx.rank))
            total = await allreduce(ctx, vec, lambda a, b: a + b)
            return total.tolist()

        result = run(4, program)
        assert all(r == [6.0, 6.0, 6.0, 6.0] for r in result.returns)

    def test_all_ranks_agree_bitwise(self):
        async def program(ctx):
            return await allreduce(ctx, 0.1 * (ctx.rank + 1), lambda a, b: a + b)

        result = run(8, program)
        assert len({repr(v) for v in result.returns}) == 1
