"""Compositor framework shared by all compositing methods.

A compositor is an object whose :meth:`Compositor.run` coroutine executes
one rank's side of the compositing phase against the cluster substrate:
it consumes the rank's rendered :class:`~repro.render.image.SubImage`,
exchanges messages with partners, charges modelled computation, and
returns a :class:`CompositeOutcome` describing the disjoint portion of
the final image this rank ends up owning.

Two ownership representations exist:

* *rect-based* (BS, BSBR, BSBRC): the rank owns a contiguous image
  region that halves each stage;
* *index-based* (BSLC): the rank owns an interleaved set of flat pixel
  indices (the static load-balancing distribution of §3.3).

Either way ``finalize``/ownership invariants are the same: across ranks
the owned sets partition the image, and the owned pixels equal the
sequential depth-order composite.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..cluster.protocol import BaseRankContext
from ..errors import CompositingError
from ..render.image import SubImage
from ..types import Rect
from ..volume.partition import PartitionPlan
from .over import over

__all__ = ["Compositor", "CompositeOutcome", "composite_rect_pixels", "split_axis_for"]


@dataclass
class CompositeOutcome:
    """What one rank holds after the compositing phase.

    ``image`` is the rank's full-frame buffer whose *owned* portion
    carries final pixels.  Exactly one of ``owned_rect`` /
    ``owned_indices`` is set.
    """

    image: SubImage
    owned_rect: Rect | None = None
    owned_indices: np.ndarray | None = None
    #: Name of the compositor that produced this outcome (diagnostics;
    #: optional, filled in by the pipeline when the method omits it).
    producer: str | None = None

    def __post_init__(self) -> None:
        if (self.owned_rect is None) == (self.owned_indices is None):
            got = "both" if self.owned_rect is not None else "neither"
            who = f" (from compositor {self.producer!r})" if self.producer else ""
            raise CompositingError(
                f"exactly one of owned_rect / owned_indices must be provided; "
                f"got {got}{who}"
            )

    @property
    def owned_pixel_count(self) -> int:
        if self.owned_rect is not None:
            return self.owned_rect.area
        indices = np.asarray(self.owned_indices)
        if indices.size == 0:
            # An empty index set is valid ownership (e.g. a fully-sent
            # sequence); a 0-d or 0-length array must count as 0, not
            # trip over a missing shape[0].
            return 0
        return int(indices.shape[0])

    def owned_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(intensity, opacity)`` arrays of the owned pixels."""
        if self.owned_rect is not None:
            rows, cols = self.owned_rect.slices()
            return (
                self.image.intensity[rows, cols].ravel().copy(),
                self.image.opacity[rows, cols].ravel().copy(),
            )
        flat_i = self.image.intensity.ravel()
        flat_a = self.image.opacity.ravel()
        idx = self.owned_indices
        return flat_i[idx].copy(), flat_a[idx].copy()


class Compositor(abc.ABC):
    """Abstract compositing method (one instance drives every rank)."""

    #: Registry/reporting name, e.g. ``"bsbrc"``.
    name: str = "abstract"

    @abc.abstractmethod
    async def run(
        self,
        ctx: BaseRankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        """Execute this rank's side of the compositing phase.

        ``image`` may be mutated in place and becomes the outcome's
        buffer.  ``plan`` and ``view_dir`` supply the front/back decision
        for each pairwise *over*.
        """

    # ---- shared helpers ----------------------------------------------------
    @staticmethod
    def check_plan(ctx: BaseRankContext, plan: PartitionPlan) -> int:
        """Validate rank-count consistency; returns ``log2 P``."""
        if plan.num_ranks != ctx.size:
            raise CompositingError(
                f"partition plan is for {plan.num_ranks} ranks but the "
                f"machine has {ctx.size}"
            )
        return plan.num_stages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def split_axis_for(region: Rect, stage: int, policy: str) -> int:
    """Image-space split axis for the current region.

    ``policy``:

    * ``"longest"`` — split the longer side (keeps regions squarish; the
      default, and both partners agree since they share the region);
    * ``"alternate"`` — rows, columns, rows, ... (Ma et al.'s original
      scheme);
    * ``"rows"`` — always split rows.
    """
    if policy == "longest":
        return 0 if region.height >= region.width else 1
    if policy == "alternate":
        return stage % 2
    if policy == "rows":
        return 0
    raise CompositingError(f"unknown split policy {policy!r}")


def composite_rect_pixels(
    image: SubImage,
    rect: Rect,
    recv_i: np.ndarray,
    recv_a: np.ndarray,
    *,
    local_in_front: bool,
) -> None:
    """Composite a received rect block with the local pixels, in place."""
    if rect.is_empty:
        return
    rows, cols = rect.slices()
    loc_i = image.intensity[rows, cols]
    loc_a = image.opacity[rows, cols]
    if local_in_front:
        out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
    else:
        out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
    image.intensity[rows, cols] = out_i
    image.opacity[rows, cols] = out_a
