#!/usr/bin/env python
"""Viewpoint rotation study (paper §3.2) with rendered turntable frames.

As the camera rotates, the screen footprints of the per-processor
subvolumes shift: with an axis-aligned view many receiving bounding
rectangles are empty (BSBR skips them for 8 bytes each); rotating about
one or two axes fills them in.  This example sweeps a turntable,
reports the BSBR empty-rectangle counts and per-method compositing
times at each angle, and writes a PGM frame per step.

Usage:
    python examples/viewpoint_rotation.py [--frames 6] [--full] [--outdir frames]
"""

import argparse
import os
import sys

from repro.analysis.tables import format_generic
from repro.cluster.topology import log2_int
from repro.experiments.harness import run_method, workload
from repro.render.reference import luminance
from repro.volume.io import to_gray8, write_pgm
from repro.volume.partition import depth_order
from repro.render.reference import composite_sequential


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--outdir", default="frames")
    parser.add_argument("--dataset", default="engine_low")
    args = parser.parse_args(argv)

    if args.full:
        image_size, volume_shape, num_ranks = 384, None, 64
    else:
        image_size, volume_shape, num_ranks = 96, (64, 64, 28), 8
    stages = log2_int(num_ranks)

    os.makedirs(args.outdir, exist_ok=True)
    table_rows = []
    for frame in range(args.frames):
        angle = 360.0 * frame / args.frames
        work = workload(
            args.dataset,
            image_size,
            max_ranks=num_ranks,
            rotation=(15.0, angle, 0.0),
            volume_shape=volume_shape,
        )

        # Compositing behaviour at this viewpoint.
        row_bsbr, run_bsbr = run_method(work, "bsbr", num_ranks)
        row_bsbrc, _ = run_method(work, "bsbrc", num_ranks)
        empties = sum(
            rs.counter_total("empty_recv_rect") for rs in run_bsbr.stats.rank_stats
        )
        table_rows.append(
            (
                f"{angle:6.1f}",
                f"{empties}/{num_ranks * stages}",
                f"{row_bsbr.t_total * 1e3:8.2f}",
                f"{row_bsbrc.t_total * 1e3:8.2f}",
                row_bsbr.mmax_bytes,
            )
        )

        # Write the turntable frame.
        subimages = work.subimages_for(num_ranks)
        order = depth_order(work.plan_for(num_ranks), work.camera.view_dir)
        image = composite_sequential(subimages, order)
        path = os.path.join(args.outdir, f"frame_{frame:03d}.pgm")
        write_pgm(path, to_gray8(luminance(image), gain=2.0))

    print(f"Turntable of {args.dataset}, {num_ranks} simulated PEs:\n")
    print(
        format_generic(
            ["angle", "empty recv rects", "BSBR ms", "BSBRC ms", "BSBR M_max"],
            table_rows,
        )
    )
    print(
        f"\n{args.frames} frames written to {args.outdir}/ — note how the"
        "\nempty-rectangle count (BSBR's shortcut) varies with the viewpoint,"
        "\nexactly the effect analysed in the paper's Section 3.2."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
