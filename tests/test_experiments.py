"""Tests for the experiment modules (quick-scale variants of every artifact)."""

import os

import pytest

from repro.experiments.figures import (
    FIGURE_DATASETS,
    format_figure,
    render_figure7,
    run_figures,
)
from repro.experiments.harness import clear_workload_cache
from repro.experiments.mmax import format_mmax, run_mmax
from repro.experiments.rotation import VIEWPOINTS, format_rotation, run_rotation
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.volume.io import read_pgm

QUICK = dict(rank_counts=(2, 4), volume_shape=(32, 32, 16), image_size=48)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_workload_cache()
    yield
    clear_workload_cache()


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(**QUICK)


class TestTable1:
    def test_grid_complete(self, table1_rows):
        # 4 datasets x 2 rank counts x 4 methods
        assert len(table1_rows) == 4 * 2 * 4
        methods = {r.method for r in table1_rows}
        assert methods == {"bs", "bsbr", "bslc", "bsbrc"}

    def test_paper_headline_bs_worst(self, table1_rows):
        """BS must have the largest T_total in every cell."""
        for dataset in ("engine_low", "engine_high", "head", "cube"):
            for p in (2, 4):
                cell = {
                    r.method: r.t_total
                    for r in table1_rows
                    if r.dataset == dataset and r.num_ranks == p
                }
                assert cell["bs"] == max(cell.values())

    def test_format_contains_all_sections(self, table1_rows):
        text = format_table1(table1_rows)
        for dataset in ("engine_low", "engine_high", "head", "cube"):
            assert dataset in text
        assert "Table 1" in text
        assert "(Time unit: ms)" in text


class TestTable2:
    def test_runs_and_formats(self):
        rows = run_table2(rank_counts=(2, 4), volume_shape=(32, 32, 16), image_size=64)
        assert len(rows) == 4 * 2 * 3
        assert {r.method for r in rows} == {"bsbr", "bslc", "bsbrc"}
        text = format_table2(rows)
        assert "Table 2" in text and "BSBRC:Ttotal" in text


class TestFigures:
    def test_figures_mapping(self):
        assert FIGURE_DATASETS == {
            8: "engine_low",
            9: "head",
            10: "engine_high",
            11: "cube",
        }

    def test_format_all_figures(self):
        rows = run_figures(**QUICK)
        for figure in (8, 9, 10, 11):
            text = format_figure(figure, rows)
            assert f"Figure {figure}" in text
            assert "legend" in text
            assert "BSBRC" in text

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            format_figure(12, [])

    def test_figure7_renders_pgms(self, tmp_path):
        paths = render_figure7(tmp_path, image_size=48, volume_shape=(32, 32, 16))
        assert len(paths) == 4
        for path in paths:
            assert os.path.exists(path)
            gray = read_pgm(path)
            assert gray.shape == (48, 48)
            assert int(gray.max()) > 0  # something visible


class TestMmax:
    def test_quick_report(self):
        report = run_mmax(**QUICK)
        assert len(report.rows) == 4 * 2 * 4
        text = format_mmax(report)
        assert "M_max" in text
        assert ("HOLDS" in text) == report.ordering_holds

    def test_bs_always_largest(self):
        report = run_mmax(**QUICK)
        for dataset in ("engine_low", "cube"):
            for p in (2, 4):
                cell = {
                    r.method: r.mmax_bytes
                    for r in report.rows
                    if r.dataset == dataset and r.num_ranks == p
                }
                assert cell["bs"] == max(cell.values())


class TestRotation:
    def test_observation_counts(self):
        observations = run_rotation(
            dataset="engine_low",
            rank_counts=(4, 8),
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        assert len(observations) == len(VIEWPOINTS) * 2
        for obs in observations:
            assert 0 <= obs.max_nonempty_recv <= obs.stages
            assert obs.empty_recv_total >= 0

    def test_rotation_increases_nonempty_rects(self):
        """The §3.2 trend: more rotation axes → no fewer non-empty rects."""
        observations = run_rotation(
            dataset="engine_low",
            rank_counts=(8,),
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        by_view = {o.viewpoint: o.mean_nonempty_recv for o in observations}
        assert by_view["two-axis"] >= by_view["normal"] - 0.5

    def test_paper_bounds_computed(self):
        observations = run_rotation(
            dataset="engine_low",
            rank_counts=(8,),
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        for obs in observations:
            assert obs.paper_bound > 0

    def test_format(self):
        observations = run_rotation(
            dataset="engine_low",
            rank_counts=(4,),
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        text = format_rotation(observations)
        assert "viewpoint" in text and "two-axis" in text
