"""Micro-benchmarks of the hot kernels under the compositing methods.

These are classic pytest-benchmark measurements (many rounds) of the
pure-numpy building blocks: the over operator, the RLE codec, bounding
rectangle search, wire packing, and one ray-cast.  They are not paper
artifacts but make regressions in the kernels visible.
"""

import numpy as np
import pytest

from repro.compositing.over import over, over_inplace
from repro.compositing.rect import find_bounding_rect
from repro.compositing.rle import rle_decode_mask, rle_encode_mask
from repro.compositing.wire import pack_bsbrc, pack_bslc, unpack_bsbrc
from repro.render.camera import Camera
from repro.render.raycast import render_subvolume
from repro.types import Rect
from repro.volume.datasets import make_dataset

SIZE = 384


@pytest.fixture(scope="module")
def planes():
    rng = np.random.default_rng(42)
    mask = rng.random((SIZE, SIZE)) < 0.25
    opacity = np.where(mask, rng.uniform(0.1, 0.9, (SIZE, SIZE)), 0.0)
    intensity = np.where(mask, rng.uniform(0.1, 1.0, (SIZE, SIZE)), 0.0)
    return intensity, opacity


def test_bench_over_functional(benchmark, planes):
    intensity, opacity = planes
    benchmark(over, intensity, opacity, opacity, intensity)


def test_bench_over_inplace(benchmark, planes):
    intensity, opacity = planes
    acc_i = intensity.copy()
    acc_a = opacity.copy()
    benchmark(over_inplace, intensity, opacity, acc_i, acc_a)


def test_bench_bounding_rect(benchmark, planes):
    intensity, opacity = planes
    rect = benchmark(find_bounding_rect, intensity, opacity)
    assert not rect.is_empty


def test_bench_rle_encode(benchmark, planes):
    intensity, opacity = planes
    mask = (intensity != 0).ravel()
    codes = benchmark(rle_encode_mask, mask)
    assert codes.size > 0


def test_bench_rle_decode(benchmark, planes):
    intensity, _ = planes
    mask = (intensity != 0).ravel()
    codes = rle_encode_mask(mask)
    out = benchmark(rle_decode_mask, codes, mask.size)
    assert out.sum() == mask.sum()


def test_bench_pack_bsbrc(benchmark, planes):
    intensity, opacity = planes
    msg = benchmark(pack_bsbrc, intensity, opacity, Rect.full(SIZE, SIZE))
    assert msg.accounted_bytes > 0


def test_bench_unpack_bsbrc(benchmark, planes):
    intensity, opacity = planes
    msg = pack_bsbrc(intensity, opacity, Rect.full(SIZE, SIZE))
    rect, positions, _, _ = benchmark(unpack_bsbrc, msg.buffer)
    assert not rect.is_empty and positions is not None


def test_bench_pack_bslc(benchmark, planes):
    intensity, opacity = planes
    indices = np.arange(SIZE * SIZE, dtype=np.int64)
    msg = benchmark(pack_bslc, intensity.ravel(), opacity.ravel(), indices)
    assert msg.accounted_bytes > 0


def test_bench_raycast_block(benchmark):
    """One rank's rendering work at paper scale (P=8 block of engine)."""
    volume, transfer = make_dataset("engine_low")
    camera = Camera(
        width=SIZE, height=SIZE, volume_shape=volume.shape, rot_x=20, rot_y=30
    )
    from repro.volume.partition import recursive_bisect

    plan = recursive_bisect(volume.shape, 8)
    image = benchmark.pedantic(
        lambda: render_subvolume(volume, transfer, camera, plan.extent(3)),
        rounds=1,
        iterations=1,
    )
    assert image.nonblank_count() > 0
