"""Byte/time accounting of the four paper methods vs the paper's formulas."""

import numpy as np
import pytest

from conftest import rendered_workload
from repro.cluster.model import SP2
from repro.cluster.topology import log2_int
from repro.pipeline.system import run_compositing
from repro.types import PIXEL_BYTES, RECT_INFO_BYTES

NUM_RANKS = 8
IMAGE_PIXELS = 48 * 48


@pytest.fixture(scope="module")
def runs():
    subimages, plan, camera = rendered_workload("engine_low", NUM_RANKS)
    return {
        method: run_compositing(list(subimages), method, plan, camera.view_dir, SP2)
        for method in ("bs", "bsbr", "bslc", "bsbrc")
    }


class TestBSAccounting:
    def test_bytes_match_equation_2(self, runs):
        """BS receives exactly 16 * A/2^k bytes per stage on every rank."""
        stats = runs["bs"].stats
        stages = log2_int(NUM_RANKS)
        for rank_stats in stats.rank_stats:
            for k in range(stages):
                expected = PIXEL_BYTES * (IMAGE_PIXELS // (2 ** (k + 1)))
                assert rank_stats.stages[k].bytes_recv == expected

    def test_over_counts_match_equation_1(self, runs):
        stats = runs["bs"].stats
        stages = log2_int(NUM_RANKS)
        expected = sum(IMAGE_PIXELS // (2 ** (k + 1)) for k in range(stages))
        for rank_stats in stats.rank_stats:
            assert rank_stats.counter_total("over") == expected

    def test_message_count(self, runs):
        stats = runs["bs"].stats
        for rank_stats in stats.rank_stats:
            assert rank_stats.msgs_recv == log2_int(NUM_RANKS)
            assert rank_stats.msgs_sent == log2_int(NUM_RANKS)

    def test_content_independent(self):
        """BS traffic is identical for blank and dense images."""
        from repro.cluster.model import IDEALIZED
        from repro.render.image import SubImage
        from repro.volume.partition import recursive_bisect

        plan = recursive_bisect((32, 32, 16), 4)
        blanks = [SubImage.blank(32, 32) for _ in range(4)]
        run = run_compositing(blanks, "bs", plan, np.array([0, 0, -1.0]), IDEALIZED)
        per_rank = 16 * (512 + 256)
        assert all(rs.bytes_recv == per_rank for rs in run.stats.rank_stats)


class TestBSBRAccounting:
    def test_rect_header_always_ships(self, runs):
        """Even empty rectangles cost 8 bytes — eq. (4)'s constant term."""
        stats = runs["bsbr"].stats
        stages = log2_int(NUM_RANKS)
        for rank_stats in stats.rank_stats:
            for k in range(stages):
                assert rank_stats.stages[k].bytes_recv >= RECT_INFO_BYTES

    def test_bytes_match_equation_4(self, runs):
        """Received bytes = 8 + 16 * a_rec per stage (a_rec from counters)."""
        stats = runs["bsbr"].stats
        for rank_stats in stats.rank_stats:
            for k in range(log2_int(NUM_RANKS)):
                bucket = rank_stats.stages[k]
                a_rec = bucket.counters.get("a_rec", 0)
                assert bucket.bytes_recv == RECT_INFO_BYTES + PIXEL_BYTES * a_rec

    def test_over_matches_a_rec(self, runs):
        stats = runs["bsbr"].stats
        for rank_stats in stats.rank_stats:
            assert rank_stats.counter_total("over") == rank_stats.counter_total("a_rec")

    def test_bound_scan_charged_once(self, runs):
        from repro.cluster.stats import PRE_STAGE

        stats = runs["bsbr"].stats
        for rank_stats in stats.rank_stats:
            assert rank_stats.stages[PRE_STAGE].counters.get("bound") == IMAGE_PIXELS

    def test_never_more_bytes_than_bs(self, runs):
        bs = runs["bs"].stats
        bsbr = runs["bsbr"].stats
        slack = RECT_INFO_BYTES * log2_int(NUM_RANKS)
        for rank in range(NUM_RANKS):
            assert (
                bsbr.rank_stats[rank].bytes_recv
                <= bs.rank_stats[rank].bytes_recv + slack
            )


class TestBSLCAccounting:
    def test_encode_scans_whole_sending_half(self, runs):
        """Eq. (5): the encode term is A/2^k pixels per stage."""
        stats = runs["bslc"].stats
        stages = log2_int(NUM_RANKS)
        for rank_stats in stats.rank_stats:
            for k in range(stages):
                # Interleaved halves may differ by up to one section, but
                # total sent+kept is exact; check the encode count is a
                # half within section slack.
                encoded = rank_stats.stages[k].counters.get("encode", 0)
                half = IMAGE_PIXELS // (2 ** (k + 1))
                assert abs(encoded - half) <= 128  # DEFAULT_SECTION

    def test_over_matches_received_opaque(self, runs):
        stats = runs["bslc"].stats
        for rank_stats in stats.rank_stats:
            assert rank_stats.counter_total("over") == rank_stats.counter_total(
                "a_opaque"
            )

    def test_smallest_mmax(self, runs):
        mmax = {m: runs[m].stats.mmax_bytes for m in runs}
        assert mmax["bslc"] == min(mmax.values())


class TestBSBRCAccounting:
    def test_encode_restricted_to_send_rect(self, runs):
        """BSBRC's claim: encode work == sending-rect pixels, which is
        never more than BSLC's whole sending half (summed over stages)."""
        bsbrc = runs["bsbrc"].stats
        bslc = runs["bslc"].stats
        for rank in range(NUM_RANKS):
            assert (
                bsbrc.rank_stats[rank].counter_total("encode")
                <= bslc.rank_stats[rank].counter_total("encode")
            )
            assert bsbrc.rank_stats[rank].counter_total("encode") == bsbrc.rank_stats[
                rank
            ].counter_total("a_send")

    def test_over_composites_only_opaque(self, runs):
        bsbrc = runs["bsbrc"].stats
        bsbr = runs["bsbr"].stats
        for rank in range(NUM_RANKS):
            opaque = bsbrc.rank_stats[rank].counter_total("over")
            rect_pixels = bsbr.rank_stats[rank].counter_total("over")
            assert opaque == bsbrc.rank_stats[rank].counter_total("a_opaque")
            assert opaque <= rect_pixels

    def test_bytes_below_bsbr(self, runs):
        """Eq. (9) middle inequality, per rank (code overhead bounded)."""
        assert runs["bsbrc"].stats.mmax_bytes <= runs["bsbr"].stats.mmax_bytes


class TestEquation9:
    @pytest.mark.parametrize("dataset", ["engine_low", "engine_high", "head", "cube"])
    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_mmax_ordering(self, dataset, num_ranks):
        """Paper eq. (9), which holds "in general": the BS >= BSBR >= BSBRC
        legs are strict (BSBRC's payload is a subset of BSBR's pixels plus
        bounded code overhead); the BSBRC >= BSLC leg can flip by a few
        hundred bytes of run-code fragmentation at unit-test image sizes,
        so it is asserted with that slack here and strictly at paper scale
        in the benchmark harness (bench_mmax)."""
        subimages, plan, camera = rendered_workload(dataset, num_ranks)
        mmax = {}
        for method in ("bs", "bsbr", "bslc", "bsbrc"):
            run = run_compositing(list(subimages), method, plan, camera.view_dir, SP2)
            mmax[method] = run.stats.mmax_bytes
        assert mmax["bs"] >= mmax["bsbr"] >= mmax["bsbrc"]
        assert mmax["bslc"] <= mmax["bsbr"]
        slack = max(512, mmax["bsbrc"] // 2)
        assert mmax["bslc"] <= mmax["bsbrc"] + slack


class TestTimingConsistency:
    def test_comp_time_equals_charged_ops(self, runs):
        """T_comp must be exactly the model-priced operation counts."""
        for method, run in runs.items():
            for rank_stats in run.stats.rank_stats:
                expected = (
                    SP2.over_time(rank_stats.counter_total("over"))
                    + SP2.encode_time(rank_stats.counter_total("encode"))
                    + SP2.bound_time(rank_stats.counter_total("bound"))
                    + SP2.pack_time(rank_stats.counter_total("pack"))
                )
                assert rank_stats.comp_time == pytest.approx(expected), method

    def test_comm_time_equals_priced_messages(self, runs):
        """T_comm = sum of Ts + incoming_bytes*Tc over stages (no wait)."""
        for method, run in runs.items():
            stats = run.stats
            for rank_stats in stats.rank_stats:
                expected = sum(
                    SP2.ts * st.msgs_recv + SP2.transfer_time(st.bytes_recv)
                    for st in rank_stats.stages.values()
                )
                assert rank_stats.comm_time == pytest.approx(expected), method

    def test_makespan_at_least_critical_path(self, runs):
        for run in runs.values():
            stats = run.stats
            assert stats.makespan >= stats.t_total - 1e-12
