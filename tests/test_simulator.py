"""Semantics tests for the discrete-event cluster simulator."""

import pytest

from repro.cluster.events import ANY_TAG
from repro.cluster.model import IDEALIZED, MachineModel
from repro.cluster.simulator import Simulator
from repro.errors import ConfigurationError, DeadlockError, RankFailedError, SimulationError

UNIT = MachineModel(name="unit", ts=1.0, tc=0.001, to=1.0, tencode=1.0, tbound=1.0)


def run(num_ranks, program, model=IDEALIZED, **kwargs):
    return Simulator(num_ranks, model, **kwargs).run(program)


class TestCompute:
    def test_compute_advances_clock(self):
        async def program(ctx):
            await ctx.compute(2.5)
            await ctx.compute(1.5)

        result = run(1, program)
        assert result.makespan == pytest.approx(4.0)
        assert result.rank_stats[0].comp_time == pytest.approx(4.0)

    def test_compute_counters(self):
        async def program(ctx):
            ctx.begin_stage(0)
            await ctx.compute(1.0, kind="over", count=100)
            await ctx.compute(1.0, kind="over", count=50)

        result = run(1, program)
        assert result.rank_stats[0].counter_total("over") == 150

    def test_negative_compute_rejected(self):
        async def program(ctx):
            await ctx.compute(-1.0)

        with pytest.raises(RankFailedError):
            run(1, program)

    def test_charge_helpers_use_model(self):
        async def program(ctx):
            await ctx.charge_over(10)
            await ctx.charge_encode(20)
            await ctx.charge_bound(30)

        result = run(1, program, model=UNIT)
        assert result.rank_stats[0].comp_time == pytest.approx(60.0)


class TestPointToPoint:
    def test_send_recv_payload(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"hello", tag=7)
                return None
            return await ctx.recv(0, tag=7)

        result = run(2, program)
        assert result.returns[1] == b"hello"

    def test_send_recv_timing(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"x" * 1000)
            else:
                await ctx.recv(0)

        result = run(2, program, model=UNIT)
        # Completion at Ts + 1000*Tc = 1 + 1 = 2 on both sides.
        assert result.makespan == pytest.approx(2.0)
        assert result.rank_stats[0].comm_time == pytest.approx(2.0)

    def test_wait_attributed_separately(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.compute(10.0)
                await ctx.send(1, b"x" * 1000)
            else:
                await ctx.recv(0)

        result = run(2, program, model=UNIT)
        receiver = result.rank_stats[1]
        assert receiver.wait_time == pytest.approx(10.0)
        assert receiver.comm_time == pytest.approx(2.0)
        sender = result.rank_stats[0]
        assert sender.wait_time == pytest.approx(0.0)

    def test_tag_mismatch_deadlocks(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"x", tag=1)
            else:
                await ctx.recv(0, tag=2)

        with pytest.raises(DeadlockError):
            run(2, program)

    def test_any_tag_matches(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"x", tag=99)
            else:
                return await ctx.recv(0, tag=ANY_TAG)

        result = run(2, program)
        assert result.returns[1] == b"x"

    def test_byte_accounting(self):
        async def program(ctx):
            ctx.begin_stage(0)
            if ctx.rank == 0:
                await ctx.send(1, b"x" * 123)
            else:
                await ctx.recv(0)

        result = run(2, program)
        assert result.rank_stats[0].bytes_sent == 123
        assert result.rank_stats[1].bytes_recv == 123
        assert result.rank_stats[0].msgs_sent == 1
        assert result.rank_stats[1].msgs_recv == 1
        assert result.mmax_bytes == 123

    def test_explicit_nbytes_overrides_payload(self):
        async def program(ctx):
            if ctx.rank == 0:
                await ctx.send(1, b"xxxx", nbytes=999)
            else:
                await ctx.recv(0)

        result = run(2, program)
        assert result.rank_stats[1].bytes_recv == 999


class TestSendRecv:
    def test_exchange_payloads(self):
        async def program(ctx):
            peer = ctx.rank ^ 1
            return await ctx.sendrecv(peer, ctx.rank * 10)

        result = run(2, program)
        assert result.returns == [10, 0]

    def test_exchange_charges_incoming_bytes(self):
        async def program(ctx):
            peer = ctx.rank ^ 1
            payload = b"x" * (1000 if ctx.rank == 0 else 3000)
            await ctx.sendrecv(peer, payload)

        result = run(2, program, model=UNIT)
        # rank 0 receives 3000B -> 1 + 3 = 4; rank 1 receives 1000B -> 2.
        assert result.rank_stats[0].comm_time == pytest.approx(4.0)
        assert result.rank_stats[1].comm_time == pytest.approx(2.0)
        assert result.makespan == pytest.approx(4.0)

    def test_self_exchange_rejected(self):
        async def program(ctx):
            await ctx.sendrecv(ctx.rank, b"x")

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_four_rank_butterfly(self):
        async def program(ctx):
            seen = [ctx.rank]
            for stage in range(2):
                peer = ctx.rank ^ (1 << stage)
                theirs = await ctx.sendrecv(peer, seen, tag=stage)
                seen = sorted(set(seen) | set(theirs))
            return seen

        result = run(4, program)
        assert all(r == [0, 1, 2, 3] for r in result.returns)


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        async def program(ctx):
            await ctx.compute(float(ctx.rank))
            await ctx.barrier()
            return ctx.stats.comp_time

        result = run(4, program, model=IDEALIZED)
        assert result.makespan == pytest.approx(3.0)

    def test_barrier_cost_logarithmic(self):
        async def program(ctx):
            await ctx.barrier()

        result = run(8, program, model=UNIT)
        assert result.makespan == pytest.approx(3.0)  # Ts * log2(8)

    def test_barrier_after_exit_is_error(self):
        async def program(ctx):
            if ctx.rank == 0:
                return  # exits without reaching the barrier
            await ctx.barrier()

        with pytest.raises(SimulationError):
            run(2, program)


class TestFailureModes:
    def test_deadlock_reports_blocked_ranks(self):
        async def program(ctx):
            await ctx.recv(1 - ctx.rank)

        with pytest.raises(DeadlockError) as excinfo:
            run(2, program)
        assert set(excinfo.value.blocked) == {0, 1}

    def test_rank_exception_wrapped(self):
        async def program(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")
            await ctx.barrier()

        with pytest.raises(RankFailedError) as excinfo:
            run(2, program)
        assert excinfo.value.rank == 1
        assert isinstance(excinfo.value.original, ValueError)

    def test_peer_out_of_range(self):
        async def program(ctx):
            await ctx.send(5, b"x")

        with pytest.raises(RankFailedError):
            run(2, program)

    def test_non_coroutine_program_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(1, IDEALIZED).run(lambda ctx: 42)  # type: ignore[arg-type]

    def test_max_steps_guard(self):
        async def program(ctx):
            while True:
                await ctx.compute(0.0)

        with pytest.raises(SimulationError):
            run(1, program, max_steps=100)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(0, IDEALIZED)


class TestDeterminism:
    def test_identical_runs(self):
        async def program(ctx):
            total = 0
            for stage in range(3):
                peer = ctx.rank ^ (1 << stage)
                got = await ctx.sendrecv(peer, ctx.rank * (stage + 1), tag=stage)
                await ctx.compute(0.001 * (got + 1))
                total += got
            return total

        first = run(8, program, model=UNIT)
        second = run(8, program, model=UNIT)
        assert first.returns == second.returns
        assert first.makespan == second.makespan
        for a, b in zip(first.rank_stats, second.rank_stats):
            assert a.comp_time == b.comp_time
            assert a.comm_time == b.comm_time


class TestTrace:
    def test_trace_records_events(self):
        async def program(ctx):
            await ctx.compute(1.0)
            peer = ctx.rank ^ 1
            await ctx.sendrecv(peer, b"x")

        sim = Simulator(2, IDEALIZED, trace=True)
        sim.run(program)
        kinds = {event.kind for event in sim.trace_events}
        assert {"compute", "post", "exch", "done"} <= kinds

    def test_trace_off_by_default(self):
        async def program(ctx):
            await ctx.compute(1.0)

        sim = Simulator(1, IDEALIZED)
        sim.run(program)
        assert sim.trace_events == []


class TestStageBuckets:
    def test_stage_routing(self):
        async def program(ctx):
            ctx.begin_stage(0)
            await ctx.compute(1.0)
            ctx.begin_stage(1)
            await ctx.compute(2.0)

        result = run(1, program)
        stats = result.rank_stats[0]
        assert stats.stages[0].comp_time == pytest.approx(1.0)
        assert stats.stages[1].comp_time == pytest.approx(2.0)

    def test_default_stage_is_pre_stage(self):
        from repro.cluster.stats import PRE_STAGE

        async def program(ctx):
            await ctx.compute(1.0)

        result = run(1, program)
        assert PRE_STAGE in result.rank_stats[0].stages
