"""The recovery subsystem: checkpoints, respawn plans, and policies.

PR 3 taught the system to *degrade* — a rank lost in the render phase
re-folds onto survivors.  This module upgrades the failure story to
*recover*: a mid-compositing crash no longer throws away every rank's
render, because each rank snapshots its partial image after every
exchange stage and the run resumes from the last completed stage.

Three cooperating pieces:

**Checkpoints** — :class:`StageCheckpointer` is installed on a rank
context (:meth:`~repro.cluster.protocol.BaseRankContext.install_checkpointer`)
and driven by the compositing engine: after each exchange stage it
snapshots the rank's partial image planes, codec state, and stage
counters into a :class:`CheckpointStore`.  The simulator runs all ranks
in one process, so :class:`MemoryCheckpointStore` keeps pickled
snapshots in a dict; the multiprocessing backend crosses process
boundaries, so :class:`DiskCheckpointStore` spills them to
``REPRO_CACHE_DIR`` (or a temp dir) with atomic replace-on-write.
Snapshots are pickled at save time, so later in-place image mutation
never aliases a stored checkpoint.

**Policies** — :class:`RecoveryPolicy` names one point on the lattice

    ``abort`` < ``degrade`` < ``respawn`` < ``checkpoint-resume``

where each policy may *fall back* to every weaker one: a respawn whose
budget is exhausted (or whose replay would violate the message protocol)
degrades; a crash that cannot degrade aborts.  The lattice is resolved
at one decision point — ``SortLastSystem.run`` — so ``--no-degrade``,
render-phase refolding, and the new mechanisms share a single code path.

**Respawn plans** — :class:`RespawnPlan` tells the multiprocessing
supervisor how to restart a dead worker in place: the replacement
program args (fault injection stripped, resume pointed at the rank's
latest checkpoint) and the bounded restart budget.  A replay is only
protocol-safe when the dead rank either never sent a message (its
peers' frames still sit in its inbound queues) or has a checkpoint
marking exactly which stages' sends already happened; the supervisor
checks both before burning budget.

Semantics of ``resume``:

* ``None`` — fresh run, restore nothing (checkpoints are still saved).
* :data:`RESUME_LATEST` — restore this rank's newest snapshot
  (multiprocessing respawn: the rank rejoins mid-protocol, so it must
  resume exactly where it left off).
* an ``int`` stage — restore that exact stage on *every* rank
  (simulator resume: all ranks replay in lockstep from the common
  minimum checkpointed stage, keeping the exchange sequence
  message-consistent).
"""

from __future__ import annotations

import abc
import os
import pickle
import uuid
from dataclasses import dataclass
from typing import Any, NamedTuple, Optional

from ..errors import ConfigurationError
from .stats import RankStats

__all__ = [
    "RECOVERY_POLICIES",
    "RESUME_LATEST",
    "DECLARED_OUTCOMES",
    "RecoveryPolicy",
    "CheckpointSnapshot",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DiskCheckpointStore",
    "StageCheckpointer",
    "RecoveryRuntime",
    "RespawnPlan",
    "run_outcome",
]

#: The policy lattice, weakest first; each policy may fall back to any
#: policy to its left when its own mechanism is inapplicable/exhausted.
RECOVERY_POLICIES = ("abort", "degrade", "respawn", "checkpoint-resume")

#: Every way a (possibly faulted) run may legally end under the lattice:
#: ``clean`` — completed with the full-fidelity image and no recovery;
#: ``resumed`` — a failure was absorbed losslessly (checkpoint resume or
#: in-place respawn); ``degraded`` — survivors carry a partial-but-valid
#: image; ``aborted`` — a typed :class:`~repro.errors.ReproError`
#: surfaced.  The schedule explorer asserts every interleaving of a
#: faulted scenario lands on one of these (matching the plan's declared
#: possibilities) or flags the interleaving as a real ordering bug.
DECLARED_OUTCOMES = ("clean", "resumed", "degraded", "aborted")


def run_outcome(*, degraded: bool, recovered: bool) -> str:
    """Name a completed run's outcome on the :data:`DECLARED_OUTCOMES`
    lattice (``aborted`` never reaches here — it is an exception path).
    """
    if degraded:
        return "degraded"
    if recovered:
        return "resumed"
    return "clean"

#: ``resume`` sentinel: restore the rank's newest checkpoint (mp respawn).
RESUME_LATEST = "latest"


@dataclass(frozen=True)
class RecoveryPolicy:
    """One point on the recovery lattice plus its knobs."""

    name: str = "degrade"
    respawn_budget: int = 2

    def __post_init__(self) -> None:
        if self.name not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {self.name!r}; "
                f"choose from {RECOVERY_POLICIES}"
            )
        if self.respawn_budget < 0:
            raise ConfigurationError(
                f"respawn_budget must be >= 0, got {self.respawn_budget}"
            )

    @property
    def level(self) -> int:
        return RECOVERY_POLICIES.index(self.name)

    @property
    def allows_degrade(self) -> bool:
        return self.level >= 1

    @property
    def allows_respawn(self) -> bool:
        return self.level >= 2

    @property
    def allows_resume(self) -> bool:
        return self.level >= 3

    @classmethod
    def resolve(
        cls, value: "str | RecoveryPolicy | None", *, respawn_budget: Optional[int] = None
    ) -> "RecoveryPolicy":
        """Coerce a CLI/config value into a policy instance."""
        if isinstance(value, RecoveryPolicy):
            return value
        name = "degrade" if value is None else str(value)
        budget = 2 if respawn_budget is None else int(respawn_budget)
        return cls(name=name, respawn_budget=budget)


class CheckpointSnapshot(NamedTuple):
    """One rank's state after completing exchange stage ``stage``.

    ``stats`` carries the rank's stage buckets up to and including
    ``stage`` (events excluded — they belong to the live run), so a
    resumed run reproduces byte/message counters bit-identically:
    restored buckets keep their original deterministic counts and
    replayed stages re-count identically.
    """

    stage: int
    intensity: Any  # numpy array, full-frame intensity plane
    opacity: Any  # numpy array, full-frame opacity plane
    codec_state: Any
    stats: RankStats
    producer: str


def _stats_for_snapshot(stats: RankStats) -> RankStats:
    """Stage buckets only; the store's pickling makes the deep copy."""
    copy = RankStats(rank=stats.rank)
    copy.stages.update(stats.stages)
    return copy


class CheckpointStore(abc.ABC):
    """Where stage snapshots live.  Keys are ``(rank, stage)``."""

    @abc.abstractmethod
    def save(self, rank: int, stage: int, snapshot: CheckpointSnapshot) -> None:
        """Persist one snapshot (an isolating copy, not a reference)."""

    @abc.abstractmethod
    def load(self, rank: int, stage: int) -> Optional[CheckpointSnapshot]:
        """Fetch a snapshot, or ``None`` when absent/unreadable."""

    @abc.abstractmethod
    def latest_stage(self, rank: int) -> Optional[int]:
        """Highest checkpointed stage for ``rank`` (``None`` if none)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Discard every snapshot this store owns."""

    def common_stage(self, num_ranks: int) -> Optional[int]:
        """Highest stage checkpointed by *every* rank, or ``None``.

        Lockstep resume on the simulator restores all ranks here so the
        replayed exchange sequence stays message-consistent.
        """
        latest: list[int] = []
        for rank in range(num_ranks):
            stage = self.latest_stage(rank)
            if stage is None:
                return None
            latest.append(stage)
        return min(latest)

    def resumable_stage(self, num_ranks: int) -> Optional[int]:
        """The :meth:`common_stage`, verified loadable on *every* rank.

        Lockstep resume is only protocol-consistent when all ranks
        restart from the same stage; a compacting store (or a crash
        mid-save) can leave the nominal common stage unloadable on a
        rank that already moved past it.  Rather than resume a torn
        state, return ``None`` — the caller replays from scratch, which
        is equally lossless, just slower.
        """
        stage = self.common_stage(num_ranks)
        if stage is None:
            return None
        if all(self.load(rank, stage) is not None for rank in range(num_ranks)):
            return stage
        return None


class MemoryCheckpointStore(CheckpointStore):
    """In-process store (simulator): pickled blobs in a dict.

    Pickling at save time isolates the snapshot from the live image the
    engine keeps mutating in place.
    """

    def __init__(self) -> None:
        self._blobs: dict[tuple[int, int], bytes] = {}

    def save(self, rank: int, stage: int, snapshot: CheckpointSnapshot) -> None:
        self._blobs[(rank, stage)] = pickle.dumps(
            snapshot, protocol=pickle.HIGHEST_PROTOCOL
        )

    def load(self, rank: int, stage: int) -> Optional[CheckpointSnapshot]:
        blob = self._blobs.get((rank, stage))
        return None if blob is None else pickle.loads(blob)

    def latest_stage(self, rank: int) -> Optional[int]:
        stages = [s for r, s in self._blobs if r == rank]
        return max(stages) if stages else None

    def clear(self) -> None:
        self._blobs.clear()


class DiskCheckpointStore(CheckpointStore):
    """Cross-process store (multiprocessing): one file per snapshot.

    Writes are atomic (temp file + ``os.replace``) so a rank crashing
    mid-save never leaves a torn checkpoint for the supervisor to
    restore from.  The instance is picklable — workers inherit it via
    program args and the supervisor consults it when deciding whether a
    respawn is protocol-safe.

    With ``compact=True`` (default), landing stage ``k`` deletes that
    rank's snapshots for stages ``< k``, so the store holds at most one
    file per rank instead of one per (rank, stage).  Safe because every
    restore path reads the *latest* stage: mp respawns restore
    ``RESUME_LATEST`` per rank, and the simulator's common-stage resume
    uses the in-memory store.  The delete runs *after* the replace, so a
    crash mid-compaction can only leave an extra older file — never lose
    the newest one.
    """

    def __init__(
        self, root: str, run_id: Optional[str] = None, *, compact: bool = True
    ) -> None:
        self.root = root
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.compact = bool(compact)
        os.makedirs(root, exist_ok=True)

    def _path(self, rank: int, stage: int) -> str:
        return os.path.join(self.root, f"ckpt-{self.run_id}-r{rank}-s{stage}.pkl")

    def save(self, rank: int, stage: int, snapshot: CheckpointSnapshot) -> None:
        path = self._path(rank, stage)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(snapshot, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        if self.compact:
            self._drop_older(rank, stage)

    def _drop_older(self, rank: int, stage: int) -> None:
        """Delete this rank's snapshots for stages strictly below ``stage``."""
        prefix = f"ckpt-{self.run_id}-r{rank}-s"
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".pkl")):
                continue
            try:
                old = int(name[len(prefix):-4])
            except ValueError:
                continue
            if old < stage:
                try:
                    os.remove(os.path.join(self.root, name))
                except OSError:
                    pass  # best-effort: a leftover file only wastes space

    def load(self, rank: int, stage: int) -> Optional[CheckpointSnapshot]:
        try:
            with open(self._path(rank, stage), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return None

    def latest_stage(self, rank: int) -> Optional[int]:
        prefix = f"ckpt-{self.run_id}-r{rank}-s"
        stages: list[int] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return None
        for name in names:
            if name.startswith(prefix) and name.endswith(".pkl"):
                try:
                    stages.append(int(name[len(prefix):-4]))
                except ValueError:
                    continue
        return max(stages) if stages else None

    def clear(self) -> None:
        prefix = f"ckpt-{self.run_id}-"
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if name.startswith(prefix):
                try:
                    os.remove(os.path.join(self.root, name))
                except OSError:
                    pass


class StageCheckpointer:
    """One rank's checkpoint driver, installed on its context.

    The compositing engine calls :meth:`restore` before its stage loop
    (returning the snapshot to resume from, or ``None`` for a fresh
    run) and :meth:`save` after each completed exchange stage.  Every
    action is recorded as a structured ``checkpoint`` event in ``sink``
    (typically ``ctx.stats.events``) so the run timeline carries the
    full recovery audit trail.  Saves record **events only, never
    counters** — checkpointing must not perturb the bit-identical
    byte/message accounting the acceptance contract checks.
    """

    def __init__(
        self,
        store: CheckpointStore,
        rank: int,
        *,
        resume: "None | int | str" = None,
        sink: Optional[list] = None,
    ) -> None:
        self.store = store
        self.rank = rank
        self.resume = resume
        self.events: list = sink if sink is not None else []

    def _resume_stage(self) -> Optional[int]:
        if self.resume is None:
            return None
        if self.resume == RESUME_LATEST:
            return self.store.latest_stage(self.rank)
        return int(self.resume)

    def restore(self, image, producer: str) -> Optional[CheckpointSnapshot]:
        """Restore this rank's resume-point snapshot into ``image``.

        Returns the snapshot (caller applies codec state and stats) or
        ``None`` when there is nothing to restore — no resume requested,
        no snapshot at the resume stage, or a snapshot produced by a
        different compositor (stale store).
        """
        stage = self._resume_stage()
        if stage is None:
            return None
        snapshot = self.store.load(self.rank, stage)
        if snapshot is None or snapshot.producer != producer:
            return None
        image.intensity[...] = snapshot.intensity
        image.opacity[...] = snapshot.opacity
        self.events.append(
            {
                "event": "checkpoint",
                "action": "restore",
                "rank": self.rank,
                "stage": stage,
            }
        )
        return snapshot

    def save(self, stage: int, image, codec_state, stats: RankStats, producer: str) -> None:
        """Snapshot the rank's post-stage state (store makes the copy)."""
        self.store.save(
            self.rank,
            stage,
            CheckpointSnapshot(
                stage=stage,
                intensity=image.intensity,
                opacity=image.opacity,
                codec_state=codec_state,
                stats=_stats_for_snapshot(stats),
                producer=producer,
            ),
        )
        self.events.append(
            {
                "event": "checkpoint",
                "action": "save",
                "rank": self.rank,
                "stage": stage,
            }
        )


class RecoveryRuntime(NamedTuple):
    """Per-run recovery wiring shipped to rank programs via args.

    ``store`` is where checkpoints go (``None`` disables them);
    ``resume`` selects the restore point (see module docstring).
    """

    store: Optional[CheckpointStore] = None
    resume: "None | int | str" = None


class RespawnPlan(NamedTuple):
    """Instructions for the multiprocessing supervisor's in-place respawn.

    ``budget`` bounds total restarts across the run; ``args`` replaces
    the dead worker's program args (fault plan stripped, ``resume``
    pointed at :data:`RESUME_LATEST`); ``store`` — when present — lets
    the supervisor verify a checkpoint exists before replaying a rank
    that already sent messages.
    """

    budget: int
    args: tuple
    store: Optional[CheckpointStore] = None
