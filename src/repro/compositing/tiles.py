"""The tile plane: deterministic tile ownership + per-tile depth folding.

Tile-routed compositing (Usher et al.'s Distributed FrameBuffer
direction) replaces the stage-synchronous exchange with per-tile
ownership: the frame is cut into a fixed grid of tiles, every tile is
owned by exactly one rank (round-robin over the row-major grid), and
each rank pushes its contribution to every tile straight to that tile's
owner.  A tile is *complete* the moment its owner holds all ``P - 1``
remote contributions — no stage barriers anywhere.

Determinism under reordering: the owner folds a tile's contributions
with :func:`fold_tile_planes`, a balanced binary tree over the rank
axis that combines group bases ``b`` and ``b + 2**s`` at level ``s``
with the front/back decision of
:meth:`~repro.volume.partition.PartitionPlan.local_in_front` — exactly
the association binary-swap's stage recursion computes.  Because the
fold reads contributions by rank index (never by arrival order) and the
tree shape depends only on ``P``, the folded pixels are bit-identical
to ``binary-swap:raw`` no matter how the network interleaves tile
messages.  Sparse codecs stay exact too: a skipped pixel is exactly
blank ``(0, 0)``, and *over* with a blank operand is the IEEE identity
on the other operand, so densifying contributions with zero-fill
reproduces the raw arithmetic bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompositingError, ConfigurationError
from ..types import Rect
from .codec import Contribution
from .over import over

__all__ = [
    "TileMap",
    "build_tile_map",
    "densify_contribution",
    "fold_tile_planes",
    "tile_flat_indices",
]


@dataclass(frozen=True, eq=False)
class TileMap:
    """Deterministic tile grid + ownership over a frame rect.

    Tiles are the row-major cells of a ``tile``-sized grid covering
    ``frame`` (edge tiles are clipped, so the rects partition the frame
    exactly).  Tile ``t`` is owned by rank ``t % num_ranks`` — every
    rank knows every owner without communication, and re-building the
    map over a smaller rank count (graceful degradation) re-folds a
    lost rank's tiles onto the survivors deterministically.
    """

    frame: Rect
    tile: int
    tiles_y: int
    tiles_x: int
    rects: tuple[Rect, ...]
    owners: tuple[int, ...]
    num_ranks: int

    @property
    def num_tiles(self) -> int:
        return len(self.rects)

    def rect(self, tile_id: int) -> Rect:
        return self.rects[tile_id]

    def owner(self, tile_id: int) -> int:
        return self.owners[tile_id]

    def owned(self, rank: int) -> list[int]:
        """Tile ids owned by ``rank``, ascending."""
        return [t for t in range(self.num_tiles) if self.owners[t] == rank]

    def owned_flat_indices(self, rank: int) -> np.ndarray:
        """Flat row-major frame indices of every pixel ``rank`` owns."""
        parts = [
            tile_flat_indices(self.rects[t], self.frame.width)
            for t in self.owned(rank)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)


def build_tile_map(frame: Rect, tile: int, num_ranks: int) -> TileMap:
    """Cut ``frame`` into a ``tile``-sized grid with round-robin owners."""
    if tile < 1:
        raise ConfigurationError(f"tile size must be >= 1, got {tile}")
    if num_ranks < 1:
        raise ConfigurationError(f"tile map needs >= 1 rank, got {num_ranks}")
    if frame.is_empty:
        raise ConfigurationError(f"cannot tile an empty frame {frame}")
    tiles_y = -(-frame.height // tile)
    tiles_x = -(-frame.width // tile)
    rects = []
    for ty in range(tiles_y):
        y0 = frame.y0 + ty * tile
        y1 = min(y0 + tile, frame.y1)
        for tx in range(tiles_x):
            x0 = frame.x0 + tx * tile
            x1 = min(x0 + tile, frame.x1)
            rects.append(Rect(y0, x0, y1, x1))
    owners = tuple(t % num_ranks for t in range(len(rects)))
    return TileMap(
        frame=frame,
        tile=int(tile),
        tiles_y=tiles_y,
        tiles_x=tiles_x,
        rects=tuple(rects),
        owners=owners,
        num_ranks=int(num_ranks),
    )


def tile_flat_indices(rect: Rect, frame_width: int) -> np.ndarray:
    """Flat row-major frame indices of the pixels inside ``rect``."""
    if rect.is_empty:
        return np.empty(0, dtype=np.int64)
    rows = np.arange(rect.y0, rect.y1, dtype=np.int64)
    cols = np.arange(rect.x0, rect.x1, dtype=np.int64)
    return (rows[:, None] * frame_width + cols[None, :]).ravel()


def densify_contribution(
    contrib: Contribution, tile_rect: Rect
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize a decoded contribution as dense tile planes.

    Pixels the codec skipped are exactly blank at the sender, so
    zero-filling them keeps the tree fold's arithmetic bit-identical to
    shipping raw pixels (*over* with a blank operand is an IEEE
    identity).  Handles every rect-capable codec output: dense tile
    blocks (raw), sub-rect blocks (rect), and position-listed sparse
    pixels (rle / rect-rle).
    """
    if contrib.rect is None:
        raise CompositingError("tile contributions must be rect-shaped")
    height, width = tile_rect.height, tile_rect.width
    rect = contrib.rect
    if (
        rect == tile_rect
        and contrib.positions is None
        and contrib.values_i is not None
    ):
        return (
            np.asarray(contrib.values_i).reshape(height, width),
            np.asarray(contrib.values_a).reshape(height, width),
        )
    dense_i = np.zeros((height, width), dtype=np.float64)
    dense_a = np.zeros((height, width), dtype=np.float64)
    if rect.is_empty:
        return dense_i, dense_a
    if not tile_rect.contains(rect):
        raise CompositingError(
            f"contribution rect {rect} falls outside tile {tile_rect}"
        )
    dy = rect.y0 - tile_rect.y0
    dx = rect.x0 - tile_rect.x0
    if contrib.positions is None:
        block = (slice(dy, dy + rect.height), slice(dx, dx + rect.width))
        dense_i[block] = np.asarray(contrib.values_i).reshape(rect.height, rect.width)
        dense_a[block] = np.asarray(contrib.values_a).reshape(rect.height, rect.width)
        return dense_i, dense_a
    positions = contrib.positions
    if positions.size:
        rows = dy + positions // rect.width
        cols = dx + positions % rect.width
        dense_i[rows, cols] = contrib.values_i
        dense_a[rows, cols] = contrib.values_a
    return dense_i, dense_a


def fold_tile_planes(
    planes: list[tuple[np.ndarray, np.ndarray]],
    plan,
    view_dir: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Depth-ordered balanced tree fold of per-rank tile planes.

    ``planes[r]`` is rank ``r``'s dense contribution to one tile.  Level
    ``s`` combines group bases ``b`` and ``b + 2**s`` with the low group
    in front iff ``plan.local_in_front(b, s, view_dir)`` — the same
    association and operand order as binary-swap's stage ``s`` exchange,
    so the result is bit-identical to ``binary-swap:raw`` on the tile.

    Returns ``(intensity, opacity, folded)`` where ``folded`` is the
    total pixel count that went through *over* (the ``T_over`` charge).
    """
    size = len(planes)
    if size & (size - 1) != 0 or size < 1:
        raise CompositingError(
            f"tile tree fold needs a power-of-two rank count, got {size}"
        )
    current = list(planes)
    folded = 0
    span = 1
    stage = 0
    while span < size:
        for base in range(0, size, 2 * span):
            low_i, low_a = current[base]
            high_i, high_a = current[base + span]
            if plan.local_in_front(base, stage, view_dir):
                out_i, out_a = over(low_i, low_a, high_i, high_a)
            else:
                out_i, out_a = over(high_i, high_a, low_i, low_a)
            current[base] = (out_i, out_a)
            folded += int(out_i.size)
        span <<= 1
        stage += 1
    final_i, final_a = current[0]
    return final_i, final_a, folded
