"""BSBRC — binary swap with bounding rectangle *and* RLE (paper §3.4).

The paper's best method, combining the two ideas so each covers the
other's weakness:

* the bounding rectangle (as in BSBR) restricts the RLE scan to
  ``A_send^k`` pixels instead of BSLC's whole sending half — less
  encoding time, fewer run codes;
* the RLE inside the rectangle (as in BSLC) means only non-blank pixels
  cross the wire — a sparse rectangle no longer ships its blanks.

The implementation follows the BSBRC algorithm listing of §3.4 line by
line: split the local rectangle by the centerline (line 6), encode and
pack the sending rectangle (lines 7-12), exchange (13-15), composite the
received non-blank pixels through the run codes (16-20), and refresh the
local rectangle as kept ∪ received (line 21).
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.topology import keeps_low_half
from ..errors import CompositingError
from ..render.image import SubImage
from ..types import Rect
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor, split_axis_for
from .over import over
from .rect import split_rect_by_centerline
from .wire import pack_bsbrc, unpack_bsbrc

__all__ = ["BinarySwapBoundingRectCompression"]


class BinarySwapBoundingRectCompression(Compositor):
    """The BSBRC method — RLE restricted to the sending bounding rect."""

    name = "bsbrc"

    def __init__(self, *, split_policy: str = "longest", charge_pack: bool = True):
        self.split_policy = split_policy
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        from ..cluster.stats import PRE_STAGE

        stages = self.check_plan(ctx, plan)
        region = image.full_rect()

        # Lines 2-4: initial scan for the local bounding rectangle.
        ctx.begin_stage(PRE_STAGE)
        local_rect = image.bounding_rect()
        await ctx.charge_bound(image.num_pixels)

        for stage in range(stages):
            ctx.begin_stage(stage)
            partner = ctx.rank ^ (1 << stage)
            axis = split_axis_for(region, stage, self.split_policy)
            first, second = region.split(axis)
            low_part, high_part = split_rect_by_centerline(local_rect, region, axis)
            if keeps_low_half(ctx.rank, stage):
                keep, keep_rect, send_rect = first, low_part, high_part
            else:
                keep, keep_rect, send_rect = second, high_part, low_part

            # Lines 7-12: RLE over the sending rectangle only.
            msg = pack_bsbrc(image.intensity, image.opacity, send_rect)
            await ctx.charge_encode(send_rect.area)
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))

            # Lines 13-15: exchange (rect info always ships, eq. (8)).
            raw = await ctx.sendrecv(
                partner, msg.buffer, nbytes=msg.accounted_bytes, tag=stage
            )
            recv_rect, positions, recv_i, recv_a = unpack_bsbrc(raw)
            if not keep.contains(recv_rect):
                raise CompositingError(
                    f"stage {stage}: received rect {recv_rect} outside kept half {keep}"
                )
            ctx.note("a_rec", recv_rect.area)
            ctx.note("a_send", send_rect.area)
            ctx.note("a_opaque", 0 if positions is None else positions.size)
            if not recv_rect.is_empty:
                ctx.note("r_code", int.from_bytes(raw[8:12], "little"))
            else:
                ctx.note("empty_recv_rect")
            if send_rect.is_empty:
                ctx.note("empty_send_rect")

            # Lines 16-20: composite only the received non-blank pixels.
            if not recv_rect.is_empty and positions is not None and positions.size:
                self._composite_sparse(
                    image,
                    recv_rect,
                    positions,
                    recv_i,  # type: ignore[arg-type]
                    recv_a,  # type: ignore[arg-type]
                    local_in_front=plan.local_in_front(ctx.rank, stage, view_dir),
                )
                await ctx.charge_over(positions.size)

            # Line 21: O(1) local-rectangle refresh.
            local_rect = keep_rect.union(recv_rect)
            region = keep
        return CompositeOutcome(image=image, owned_rect=region)

    @staticmethod
    def _composite_sparse(
        image: SubImage,
        rect: Rect,
        positions: np.ndarray,
        recv_i: np.ndarray,
        recv_a: np.ndarray,
        *,
        local_in_front: bool,
    ) -> None:
        """Composite non-blank pixels at row-major ``positions`` of ``rect``."""
        rows = rect.y0 + positions // rect.width
        cols = rect.x0 + positions % rect.width
        loc_i = image.intensity[rows, cols]
        loc_a = image.opacity[rows, cols]
        if local_in_front:
            out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
        else:
            out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
        image.intensity[rows, cols] = out_i
        image.opacity[rows, cols] = out_a
