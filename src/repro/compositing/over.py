"""The *over* compositing operator (Porter-Duff, front-to-back form).

Every pixel carries an ``intensity`` (pre-multiplied by its opacity, as
produced by front-to-back ray casting) and an ``opacity`` in ``[0, 1]``.
Compositing pixel *f* (front) over pixel *b* (back):

.. math::

    I = I_f + (1 - \\alpha_f)\\,I_b \\qquad
    \\alpha = \\alpha_f + (1 - \\alpha_f)\\,\\alpha_b

The operator is associative (the algebraic property binary-swap relies
on) but **not** commutative: callers must know which operand is in front.
All functions here are pure numpy and operate on matching-shape arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "over",
    "over_inplace",
    "over_scalar",
    "is_blank",
    "nonblank_mask",
]


def over(
    front_i: np.ndarray,
    front_a: np.ndarray,
    back_i: np.ndarray,
    back_a: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Composite *front over back*, returning new ``(intensity, opacity)``.

    Shapes must broadcast; dtype follows numpy promotion (float64 in the
    library's pipelines).
    """
    trans = 1.0 - front_a
    return front_i + trans * back_i, front_a + trans * back_a


def over_inplace(
    front_i: np.ndarray,
    front_a: np.ndarray,
    acc_i: np.ndarray,
    acc_a: np.ndarray,
) -> None:
    """Composite *front over acc*, storing the result into ``acc_*``.

    This is the hot path of every compositing stage: the received (or
    local) front half is folded into the accumulation buffers without
    allocating new planes.
    """
    trans = 1.0 - front_a
    np.multiply(acc_i, trans, out=acc_i)
    acc_i += front_i
    np.multiply(acc_a, trans, out=acc_a)
    acc_a += front_a


def over_scalar(front: tuple[float, float], back: tuple[float, float]) -> tuple[float, float]:
    """Scalar reference implementation (oracle for tests)."""
    fi, fa = front
    bi, ba = back
    return fi + (1.0 - fa) * bi, fa + (1.0 - fa) * ba


def is_blank(intensity: np.ndarray, opacity: np.ndarray) -> np.ndarray:
    """Boolean mask of *blank* pixels (background).

    The paper's sparse methods classify a pixel as blank when both its
    values are zero — the state a ray-cast pixel has iff no non-transparent
    sample was hit (§3.3: "checks a pixel's value (opacity or intensity)
    to see whether it is zero or nonzero").
    """
    return (opacity == 0.0) & (intensity == 0.0)


def nonblank_mask(intensity: np.ndarray, opacity: np.ndarray) -> np.ndarray:
    """Boolean mask of foreground pixels; complement of :func:`is_blank`."""
    return (opacity != 0.0) | (intensity != 0.0)
