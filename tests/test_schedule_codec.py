"""Unit tests for the schedule × codec decomposition.

Covers the two planes in isolation — schedule structure (partners,
parts, depth order, radix adaptation) and codec wire roundtrips — plus
the registry surface (combo resolution, did-you-mean, catalog) and the
:class:`~repro.compositing.base.CompositeOutcome` invariants.  End-to-end
pixel equivalence of every combo lives in ``test_grid_equivalence.py``.
"""

import numpy as np
import pytest

from conftest import rendered_workload
from repro.compositing.base import CompositeOutcome
from repro.compositing.codec import (
    BoundingRectCodec,
    RawCodec,
    RectRLECodec,
    RunLengthCodec,
)
from repro.compositing.engine import ScheduledCompositor
from repro.compositing.registry import (
    CODECS,
    COMBO_ALIASES,
    SCHEDULES,
    available_methods,
    make_compositor,
    make_scheduled,
    method_catalog,
    validate_method,
)
from repro.compositing.schedule import (
    BinarySwapSchedule,
    DirectSendSchedule,
    IndexPart,
    RadixKSchedule,
    RectPart,
    SectionedSchedule,
    parse_radix,
)
from repro.compositing.wire import (
    pack_raw_seq,
    pack_rle_rect,
    unpack_raw_seq,
    unpack_rle_rect,
)
from repro.errors import CompositingError, ConfigurationError, PartitionError
from repro.render.image import SubImage
from repro.types import Rect
from repro.volume.folded import refold_survivors
from repro.volume.partition import recursive_bisect

VIEW = np.array([0.37, -0.61, 0.70])


def _plan(num_ranks):
    return recursive_bisect((32, 32, 16), num_ranks)


# ---------------------------------------------------------------------------
# CompositeOutcome invariants
# ---------------------------------------------------------------------------
class TestCompositeOutcome:
    def _image(self):
        return SubImage.blank(4, 4)

    def test_both_ownerships_rejected_naming_producer(self):
        with pytest.raises(CompositingError) as err:
            CompositeOutcome(
                image=self._image(),
                owned_rect=Rect(0, 0, 2, 2),
                owned_indices=np.arange(3),
                producer="radix-k:raw",
            )
        assert "got both" in str(err.value)
        assert "radix-k:raw" in str(err.value)

    def test_neither_ownership_rejected(self):
        with pytest.raises(CompositingError, match="got neither"):
            CompositeOutcome(image=self._image())

    def test_no_producer_message_still_readable(self):
        with pytest.raises(CompositingError) as err:
            CompositeOutcome(image=self._image())
        assert "compositor" not in str(err.value)

    def test_empty_index_ownership_counts_zero(self):
        outcome = CompositeOutcome(
            image=self._image(), owned_indices=np.array([], dtype=np.int64)
        )
        assert outcome.owned_pixel_count == 0
        values_i, values_a = outcome.owned_values()
        assert values_i.size == 0 and values_a.size == 0

    def test_zero_dim_index_array_counts_zero(self):
        outcome = CompositeOutcome(
            image=self._image(), owned_indices=np.empty((0,), dtype=np.int64)
        )
        assert outcome.owned_pixel_count == 0


# ---------------------------------------------------------------------------
# Registry surface
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_paper_aliases_map_to_engine(self):
        for alias, (schedule_name, codec_name) in COMBO_ALIASES.items():
            compositor = make_compositor(alias)
            assert isinstance(compositor, ScheduledCompositor)
            assert compositor.name == alias
            assert compositor.schedule.name == schedule_name
            assert compositor.codec.name == codec_name

    def test_combo_spec_builds_compositor(self):
        compositor = make_compositor("radix-k:rect-rle", radix=(4, 4))
        assert compositor.name == "radix-k:rect-rle"
        assert compositor.schedule.radix == (4, 4)

    def test_make_scheduled_direct(self):
        compositor = make_scheduled("radix-k", "rect", radix=(8,))
        assert compositor.name == "radix-k:rect"
        assert compositor.schedule.effective_radix(8) == (8,)

    def test_unknown_schedule_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'radix-k'"):
            make_compositor("radixk:raw")

    def test_unknown_codec_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'rect-rle'"):
            make_compositor("binary-swap:rectrle")

    def test_unknown_method_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'bsbr"):
            make_compositor("bsbrk")

    def test_incompatible_combo_lists_alternatives(self):
        with pytest.raises(ConfigurationError) as err:
            make_compositor("sectioned:rect")
        assert "compatible codecs" in str(err.value)
        assert "'rle'" in str(err.value)

    def test_unknown_option_rejected_with_accepted_list(self):
        with pytest.raises(ConfigurationError) as err:
            make_compositor("binary-swap:raw", sectoin=7)
        assert "sectoin" in str(err.value)
        assert "split_policy" in str(err.value)

    def test_validate_method_no_instantiation(self):
        validate_method("radix-k:rect-rle")
        validate_method("BSBRC")
        with pytest.raises(ConfigurationError):
            validate_method("sectioned:rect")
        with pytest.raises(ConfigurationError):
            validate_method("nope")

    def test_catalog_covers_every_method(self):
        catalog = method_catalog()
        assert set(catalog) == set(available_methods())
        for alias in COMBO_ALIASES:
            assert catalog[alias].startswith("paper method")
        assert all(catalog[f"radix-k:{c}"] for c in ("raw", "rect", "rect-rle", "rle"))

    def test_every_advertised_combo_is_compatible(self):
        from repro.compositing.registry import TILE_ROUTED

        for name in available_methods():
            if ":" not in name:
                continue
            schedule_name, _, codec_name = name.partition(":")
            if schedule_name == TILE_ROUTED:
                # The tile plane carries rect-shaped tiles on any codec.
                assert "rect" in CODECS[codec_name].supports
                continue
            kind = SCHEDULES[schedule_name].part_kind
            assert kind in CODECS[codec_name].supports


# ---------------------------------------------------------------------------
# Schedule structure
# ---------------------------------------------------------------------------
class TestBinarySwapSchedule:
    def test_program_shape(self):
        plan = _plan(8)
        program = BinarySwapSchedule().build(3, 8, Rect(0, 0, 48, 48), 48 * 48, plan, VIEW)
        assert len(program.stages) == 3
        for stage_idx, stage in enumerate(program.stages):
            assert isinstance(stage.keep_part, RectPart)
            assert len(stage.steps) == 1
            assert stage.steps[0].peer == 3 ^ (1 << stage_idx)
            assert stage.composite_order in (((0, True),), ((0, False),))
        # Kept + sent halves tile the pre-stage region.
        first = program.stages[0]
        keep, sent = first.keep_part.rect, first.steps[0].send_part.rect
        assert keep.area + sent.area == 48 * 48
        assert program.final_part.rect.area == 48 * 48 // 8

    def test_too_small_image_raises_with_stage(self):
        plan = _plan(8)
        with pytest.raises(CompositingError, match="stage 2"):
            BinarySwapSchedule().build(0, 8, Rect(0, 0, 2, 2), 4, plan, VIEW)


class TestRadixKSchedule:
    def test_default_degenerates_to_all_twos(self):
        assert RadixKSchedule().effective_radix(16) == (2, 2, 2, 2)

    @pytest.mark.parametrize(
        "size,expected",
        [(16, (4, 4)), (8, (4, 2)), (4, (4,)), (2, (2,))],
    )
    def test_radix_adapts_to_group_size(self, size, expected):
        assert RadixKSchedule(radix=(4, 4)).effective_radix(size) == expected

    def test_last_factor_repeats(self):
        assert RadixKSchedule(radix=(4,)).effective_radix(64) == (4, 4, 4)

    def test_invalid_factors_rejected(self):
        with pytest.raises(ConfigurationError, match="powers of two"):
            RadixKSchedule(radix=(3,))
        with pytest.raises(ConfigurationError, match="powers of two"):
            RadixKSchedule(radix=(4, 1))
        with pytest.raises(ConfigurationError, match="not be empty"):
            RadixKSchedule(radix=())

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            RadixKSchedule().effective_radix(6)

    def test_radix4_group_structure(self):
        plan = _plan(4)
        program = RadixKSchedule(radix=(4,)).build(
            1, 4, Rect(0, 0, 40, 40), 1600, plan, VIEW
        )
        assert len(program.stages) == 1
        stage = program.stages[0]
        # Three XOR rounds: peers 1^1, 1^2, 1^3.
        assert [step.peer for step in stage.steps] == [0, 3, 2]
        # Each member gets a quarter; parts tile the frame.
        areas = [step.send_part.rect.area for step in stage.steps]
        assert stage.keep_part.rect.area + sum(areas) == 1600
        # Every peer's contribution folds exactly once.
        assert sorted(slot for slot, _ in stage.composite_order) == [0, 1, 2]

    def test_final_ownership_independent_of_radix(self):
        plan = _plan(8)
        frame = Rect(0, 0, 48, 48)
        for rank in range(8):
            rects = {
                RadixKSchedule(radix=radix)
                .build(rank, 8, frame, 48 * 48, plan, VIEW)
                .final_part.rect
                for radix in [(2, 2, 2), (4, 2), (2, 4), (8,)]
            }
            assert len(rects) == 1

    def test_refold_pairs_are_bisection_buddies(self):
        assert RadixKSchedule(radix=(4, 4)).refold_pairs(8) == [
            (0, 1), (2, 3), (4, 5), (6, 7),
        ]


class TestDirectSendSchedule:
    def test_single_stage_all_pairs(self):
        plan = _plan(8)
        program = DirectSendSchedule().build(2, 8, Rect(0, 0, 48, 48), 48 * 48, plan, VIEW)
        assert len(program.stages) == 1
        stage = program.stages[0]
        assert len(stage.steps) == 7
        assert sorted(step.peer for step in stage.steps) == [0, 1, 3, 4, 5, 6, 7]


class TestSectionedSchedule:
    def test_invalid_section_rejected(self):
        with pytest.raises(CompositingError, match="section must be >= 1"):
            SectionedSchedule(section=0)

    def test_index_parts_partition_sequence(self):
        plan = _plan(4)
        program = SectionedSchedule(section=16).build(
            0, 4, Rect(0, 0, 40, 40), 1600, plan, VIEW
        )
        assert len(program.stages) == 2
        stage = program.stages[0]
        assert isinstance(stage.keep_part, IndexPart)
        merged = np.sort(
            np.concatenate([stage.keep_part.indices, stage.steps[0].send_part.indices])
        )
        assert np.array_equal(merged, np.arange(1600))
        assert program.final_part.indices.shape[0] == 1600 // 4


# ---------------------------------------------------------------------------
# parse_radix
# ---------------------------------------------------------------------------
class TestParseRadix:
    def test_parses_lists(self):
        assert parse_radix("4,4") == (4, 4)
        assert parse_radix(" 2, 8 ") == (2, 8)
        assert parse_radix("16") == (16,)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="comma-separated integers"):
            parse_radix("4,x")
        with pytest.raises(ConfigurationError, match="no factors"):
            parse_radix(",")


# ---------------------------------------------------------------------------
# Engine glue
# ---------------------------------------------------------------------------
class TestScheduledCompositor:
    def test_incompatible_pair_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="cannot carry"):
            ScheduledCompositor(SectionedSchedule(), BoundingRectCodec())

    def test_default_name_is_combo_spec(self):
        compositor = ScheduledCompositor(BinarySwapSchedule(), RawCodec())
        assert compositor.name == "binary-swap:raw"

    def test_outcome_stamps_producer(self):
        from repro.cluster.model import IDEALIZED
        from repro.pipeline.system import run_compositing

        subimages, plan, camera = rendered_workload("engine_low", 4)
        run = run_compositing(
            [img.copy() for img in subimages],
            "radix-k:raw", plan, camera.view_dir, IDEALIZED, radix=(4,),
        )
        assert all(o.producer == "radix-k:raw" for o in run.outcomes)


# ---------------------------------------------------------------------------
# Refold pairing contract
# ---------------------------------------------------------------------------
class TestRefoldPairs:
    def test_matching_pairs_accepted(self):
        plan = _plan(4)
        folded, rank_map = refold_survivors(plan, [2], pairs=[(0, 1), (2, 3)])
        assert folded.num_ranks == 3
        assert rank_map[1] == 3  # survivor covers the merged block

    def test_mismatched_pairs_fail_loudly(self):
        plan = _plan(4)
        with pytest.raises(PartitionError, match="fold pairing"):
            refold_survivors(plan, [2], pairs=[(0, 2), (1, 3)])


# ---------------------------------------------------------------------------
# New wire kernels
# ---------------------------------------------------------------------------
class TestWireKernels:
    def test_raw_seq_roundtrip(self, rng):
        intensity = rng.uniform(0, 1, 100)
        opacity = rng.uniform(0, 1, 100)
        indices = np.arange(0, 100, 3)
        msg = pack_raw_seq(intensity, opacity, indices)
        assert msg.accounted_bytes == indices.shape[0] * 16
        out_i, out_a = unpack_raw_seq(msg.buffer, indices.shape[0])
        np.testing.assert_array_equal(out_i, intensity[indices])
        np.testing.assert_array_equal(out_a, opacity[indices])

    def test_rle_rect_roundtrip(self, rng):
        height = width = 12
        mask = rng.random((height, width)) < 0.4
        opacity = np.where(mask, rng.uniform(0.1, 0.9, (height, width)), 0.0)
        intensity = np.where(mask, opacity * 0.5, 0.0)
        rect = Rect(2, 3, 10, 11)
        msg = pack_rle_rect(intensity, opacity, rect)
        positions, out_i, out_a = unpack_rle_rect(msg.buffer, rect)
        rows, cols = rect.slices()
        flat_i = intensity[rows, cols].ravel()
        flat_a = opacity[rows, cols].ravel()
        expected = np.flatnonzero((flat_a != 0.0) | (flat_i != 0.0))
        np.testing.assert_array_equal(positions, expected)
        np.testing.assert_array_equal(out_i, flat_i[expected])
        np.testing.assert_array_equal(out_a, flat_a[expected])

    def test_codec_scan_and_supports(self):
        assert RawCodec.supports == frozenset({"rect", "index"})
        assert RunLengthCodec.supports == frozenset({"rect", "index"})
        assert BoundingRectCodec.supports == frozenset({"rect"})
        assert RectRLECodec.supports == frozenset({"rect"})
        assert BoundingRectCodec.needs_bound_scan
        assert not RawCodec.needs_bound_scan
