#!/usr/bin/env python
"""Nightly chaos soak: loop the randomized fault matrix on fresh seeds.

Each iteration runs the chaos + recovery suites with a distinct
``REPRO_CHAOS_SEED_OFFSET``, so the randomized matrix keeps exploring
new fault scenarios while every failure stays reproducible: on a failing
iteration the exact seed window is known, and the fault plans behind it
are regenerated (via :func:`repro.cluster.faults.random_plan`) and saved
as ``repro.fault-plan/1`` JSON artifacts for the bug report.

Each iteration also runs a small schedule-exploration sweep
(:class:`repro.cluster.explore.Explorer`): seeded random interleavings
of the canonical crash+delay scenario, seeds derived from the same
offset so the explored schedules keep moving night over night.  Failing
interleavings archive their replayable ``repro.sched-trace/1`` decision
traces under ``fail-<offset>/sched-traces/`` — right next to the
regenerated fault plans — and the per-iteration explorer counts feed an
``explorer`` flake-rate block in the archive totals.

Every run also writes a ``repro.soak-summary/1`` archive JSON
(``--archive``, default ``<artifacts>/soak-summary.json``) holding one
record per iteration — seed offset, wall seconds, pass/fail, explorer
classification counts — plus the aggregate flake rates, so nightly
trends (slowdowns, rising flake rates) are visible by diffing archives
across nights.  The archive is written atomically after *each*
iteration, so a killed soak still leaves a complete record of what ran.

Usage::

    python tools/soak.py [--minutes N] [--iterations K]
                         [--artifacts DIR] [--archive FILE]
                         [--offset-step K] [--explore-interleavings N]

Environment:

* ``SOAK_MINUTES`` — default time budget (CLI ``--minutes`` wins).
* ``REPRO_CHAOS_SEED_OFFSET`` — starting offset (default: derived from
  the clock so independent nightly runs diverge).

Exit status is non-zero when any iteration failed; the artifacts
directory then holds one ``fail-<offset>/`` folder per failing window
with the pytest tail and the regenerated fault plans.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Mirrors the chaos matrix geometry (tests/test_chaos.py).
MATRIX_SEEDS = 8
NUM_RANKS = 4
NUM_STAGES = 2

#: Archive schema identifier (bump on layout changes).
ARCHIVE_SCHEMA = "repro.soak-summary/1"

#: Per-iteration schedule-exploration sweep width (0 disables).
EXPLORE_INTERLEAVINGS = 4
EXPLORE_RANKS = 8


def _pytest_command(offset: int, timeout_flag: bool) -> list[str]:
    cmd = [
        sys.executable, "-m", "pytest",
        "tests/test_chaos.py", "tests/test_recovery.py", "-q",
    ]
    if timeout_flag:
        cmd += ["--timeout=120", "--timeout-method=signal"]
    return cmd


def _have_pytest_timeout() -> bool:
    try:
        import pytest_timeout  # noqa: F401
        return True
    except ImportError:
        return False


def _save_failure_artifacts(artifacts: str, offset: int, output: str) -> None:
    """Persist the failing window: pytest tail + regenerated fault plans."""
    folder = os.path.join(artifacts, f"fail-{offset}")
    os.makedirs(folder, exist_ok=True)
    with open(os.path.join(folder, "pytest-output.txt"), "w", encoding="utf-8") as fh:
        fh.write(output)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.cluster.faults import random_plan

        for seed in range(offset, offset + MATRIX_SEEDS):
            plan = random_plan(seed, num_ranks=NUM_RANKS, num_stages=NUM_STAGES)
            plan.save(os.path.join(folder, f"fault-plan-seed{seed}.json"))
    except Exception as exc:  # artifact capture is best-effort
        with open(os.path.join(folder, "plan-dump-error.txt"), "w", encoding="utf-8") as fh:
            fh.write(repr(exc))
    finally:
        sys.path.pop(0)


def run_explorer_sweep(offset: int, interleavings: int, artifacts: str) -> dict:
    """Seeded random-walk schedule exploration for one soak iteration.

    Returns a record with the interleaving count, classification
    counts, failing-trace paths (archived under
    ``fail-<offset>/sched-traces/``), and ``ok``.  Runs in-process: the
    explorer is deterministic per seed, so a failing walk's trace
    replays the exact interleaving offline.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.cluster.explore import (
            Explorer,
            ExploreScenario,
            default_fault_plan,
        )

        scenario = ExploreScenario(
            method="binary-swap:raw",
            num_ranks=EXPLORE_RANKS,
            fault_plan=default_fault_plan(EXPLORE_RANKS),
        )
        explorer = Explorer(
            scenario,
            trace_dir=os.path.join(artifacts, f"fail-{offset}", "sched-traces"),
        )
        report = explorer.run_random(interleavings, seed=offset)
        return {
            "interleavings": len(report.results),
            "counts": report.counts(),
            "failures": len(report.failures),
            "failing_traces": [
                r.trace_path for r in report.failures if r.trace_path
            ],
            "ok": report.ok,
        }
    except Exception as exc:  # an explorer crash is itself a failure
        return {
            "interleavings": 0,
            "counts": {},
            "failures": 1,
            "failing_traces": [],
            "error": repr(exc),
            "ok": False,
        }
    finally:
        sys.path.pop(0)


def summarize(iterations: list[dict]) -> dict:
    """Aggregate per-iteration records into the archive's totals block."""
    count = len(iterations)
    failures = sum(1 for it in iterations if not it["ok"])
    seconds = [it["seconds"] for it in iterations]
    explored = sum(it.get("explorer", {}).get("interleavings", 0) for it in iterations)
    explorer_failures = sum(
        it.get("explorer", {}).get("failures", 0) for it in iterations
    )
    return {
        "iterations": count,
        "failures": failures,
        "flake_rate": (failures / count) if count else 0.0,
        "total_seconds": sum(seconds),
        "mean_seconds": (sum(seconds) / count) if count else 0.0,
        "max_seconds": max(seconds) if seconds else 0.0,
        "explorer": {
            "interleavings": explored,
            "failures": explorer_failures,
            "flake_rate": (explorer_failures / explored) if explored else 0.0,
        },
    }


def write_archive(path: str, iterations: list[dict], *, started_at: str) -> None:
    """Atomically persist the soak archive (schema ``repro.soak-summary/1``)."""
    doc = {
        "schema": ARCHIVE_SCHEMA,
        "started_at": started_at,
        "matrix_seeds": MATRIX_SEEDS,
        "totals": summarize(iterations),
        "iterations": iterations,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


def run_iteration(
    offset: int,
    env_base: dict,
    timeout_flag: bool,
    artifacts: str,
    *,
    explore_interleavings: int = EXPLORE_INTERLEAVINGS,
) -> dict:
    """One soak iteration: run the suites at ``offset``, record telemetry."""
    env = dict(env_base, REPRO_CHAOS_SEED_OFFSET=str(offset))
    started = time.monotonic()
    proc = subprocess.run(
        _pytest_command(offset, timeout_flag),
        cwd=REPO_ROOT, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    suites_ok = proc.returncode == 0
    if not suites_ok:
        tail = "\n".join(proc.stdout.splitlines()[-200:])
        _save_failure_artifacts(artifacts, offset, tail)
    explorer = None
    if explore_interleavings > 0:
        explorer = run_explorer_sweep(offset, explore_interleavings, artifacts)
    elapsed = time.monotonic() - started
    record = {
        "offset": offset,
        "seconds": round(elapsed, 3),
        "ok": suites_ok and (explorer is None or explorer["ok"]),
        "returncode": proc.returncode,
    }
    if explorer is not None:
        record["explorer"] = explorer
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--minutes", type=float,
        default=float(os.environ.get("SOAK_MINUTES", "20")),
        help="soak time budget in minutes (default: $SOAK_MINUTES or 20)",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="run exactly K iterations instead of a time budget",
    )
    parser.add_argument(
        "--artifacts", default=os.path.join(REPO_ROOT, "soak-artifacts"),
        help="where failing fault plans and logs are written",
    )
    parser.add_argument(
        "--archive", default=None,
        help="soak-summary JSON path (default: <artifacts>/soak-summary.json)",
    )
    parser.add_argument(
        "--offset-step", type=int, default=MATRIX_SEEDS,
        help="seed-offset stride between iterations (default: matrix width)",
    )
    parser.add_argument(
        "--explore-interleavings", type=int, default=EXPLORE_INTERLEAVINGS,
        help="random schedule interleavings explored per iteration "
             f"(default: {EXPLORE_INTERLEAVINGS}; 0 disables the sweep)",
    )
    args = parser.parse_args(argv)
    archive = args.archive or os.path.join(args.artifacts, "soak-summary.json")

    offset = int(
        os.environ.get("REPRO_CHAOS_SEED_OFFSET", str(int(time.time()) % 100_000))
    )
    deadline = time.monotonic() + args.minutes * 60.0
    timeout_flag = _have_pytest_timeout()
    env_base = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    started_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    records: list[dict] = []
    while (
        len(records) < args.iterations
        if args.iterations is not None
        else time.monotonic() < deadline
    ):
        record = run_iteration(
            offset, env_base, timeout_flag, args.artifacts,
            explore_interleavings=args.explore_interleavings,
        )
        records.append(record)
        status = "ok" if record["ok"] else f"FAIL rc={record['returncode']}"
        explorer = record.get("explorer")
        if explorer is not None:
            status += (
                f" explore={explorer['interleavings'] - explorer['failures']}"
                f"/{explorer['interleavings']}"
            )
        print(
            f"[soak] iteration {len(records)} offset={offset} "
            f"{record['seconds']:.0f}s: {status}",
            flush=True,
        )
        # Archive after every iteration so a killed soak keeps its record.
        write_archive(archive, records, started_at=started_at)
        offset += args.offset_step

    totals = summarize(records)
    print(
        f"[soak] done: {totals['iterations']} iterations, "
        f"{totals['failures']} failing windows "
        f"(flake rate {totals['flake_rate']:.1%}, "
        f"mean {totals['mean_seconds']:.0f}s/iter)"
    )
    explorer_totals = totals["explorer"]
    if explorer_totals["interleavings"]:
        print(
            f"[soak] explorer: {explorer_totals['interleavings']} interleavings, "
            f"{explorer_totals['failures']} failing "
            f"(flake rate {explorer_totals['flake_rate']:.1%})"
        )
    print(f"[soak] archive at {archive}")
    if totals["failures"]:
        print(f"[soak] artifacts in {args.artifacts}")
    return 1 if totals["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
