"""BSBR — binary swap with bounding rectangles (paper §3.2).

Each rank scans its rendered subimage once (``T_bound``) for the *local
bounding rectangle* of its non-blank pixels.  At every stage the current
region's centerline splits that rectangle into the new local and the
*sending* bounding rectangles; only pixels inside the sending rectangle
cross the wire, prefixed by its 8 bytes of corner info (which ship even
when the rectangle is empty — the pair cannot know in advance, so the
exchange itself is unconditional, paper eq. (4)).  After the exchange the
local rectangle is updated as the union of the kept part and the
received rectangle — an O(1) refresh, never a rescan.

Strength: dense rectangles ship with almost no overhead.  Weakness: a
*sparse* rectangle still ships every blank pixel inside it.
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.topology import keeps_low_half
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor, composite_rect_pixels, split_axis_for
from .rect import split_rect_by_centerline
from .wire import pack_bsbr, unpack_bsbr

__all__ = ["BinarySwapBoundingRect"]


class BinarySwapBoundingRect(Compositor):
    """The BSBR method — ship only the bounding rectangle of each half."""

    name = "bsbr"

    def __init__(self, *, split_policy: str = "longest", charge_pack: bool = True):
        self.split_policy = split_policy
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        from ..cluster.stats import PRE_STAGE

        stages = self.check_plan(ctx, plan)
        region = image.full_rect()

        # Initial full scan for the local bounding rectangle (T_bound).
        ctx.begin_stage(PRE_STAGE)
        local_rect = image.bounding_rect()
        await ctx.charge_bound(image.num_pixels)

        for stage in range(stages):
            ctx.begin_stage(stage)
            partner = ctx.rank ^ (1 << stage)
            axis = split_axis_for(region, stage, self.split_policy)
            first, second = region.split(axis)
            low_part, high_part = split_rect_by_centerline(local_rect, region, axis)
            if keeps_low_half(ctx.rank, stage):
                keep, send = first, second
                keep_rect, send_rect = low_part, high_part
            else:
                keep, send = second, first
                keep_rect, send_rect = high_part, low_part

            msg = pack_bsbr(image.intensity, image.opacity, send_rect)
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            raw = await ctx.sendrecv(
                partner, msg.buffer, nbytes=msg.accounted_bytes, tag=stage
            )
            recv_rect, recv_i, recv_a = unpack_bsbr(raw)
            if not keep.contains(recv_rect):
                raise CompositingError(
                    f"stage {stage}: received rect {recv_rect} outside kept half {keep}"
                )
            ctx.note("a_rec", recv_rect.area)
            ctx.note("a_send", send_rect.area)
            if recv_rect.is_empty:
                ctx.note("empty_recv_rect")
            if send_rect.is_empty:
                ctx.note("empty_send_rect")
            if not recv_rect.is_empty:
                composite_rect_pixels(
                    image,
                    recv_rect,
                    recv_i,  # type: ignore[arg-type]
                    recv_a,  # type: ignore[arg-type]
                    local_in_front=plan.local_in_front(ctx.rank, stage, view_dir),
                )
                await ctx.charge_over(recv_rect.area)
            local_rect = keep_rect.union(recv_rect)
            region = keep
        return CompositeOutcome(image=image, owned_rect=region)
