"""Collective operations built on the point-to-point substrate.

Only what the sort-last pipeline needs: a ``gather`` of final image tiles
to a root (the display node), a ``bcast`` of configuration from the root
(the partitioning phase), and an ``allreduce`` used by diagnostics.  All
are implemented with explicit p2p messages so that their traffic is
visible to the same accounting that measures the compositing phase.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from .context import RankContext, payload_nbytes

__all__ = [
    "gather",
    "bcast",
    "allreduce",
    "exchange_grouped",
    "TileRouter",
    "route_tiles",
]

#: Tag space reserved for collectives so they never collide with
#: compositing-stage tags (which are small non-negative stage indices).
_GATHER_TAG = 1 << 20
_BCAST_TAG = 1 << 21
_ALLREDUCE_TAG = 1 << 22
#: Base of the per-tile tag space used by :class:`TileRouter`; tile ``t``
#: travels under tag ``_TILE_TAG + t``, above every other reserved range.
_TILE_TAG = 1 << 23


class TileRouter:
    """Tag-routed asynchronous tile pump over the isend/irecv surface.

    Each tile travels under its own tag (``_TILE_TAG + tile_id``), so an
    owner can complete any one tile independently of every other message
    in flight — there is no stage structure and no barrier anywhere.

    Ordering contract (what keeps the strictly-FIFO multiprocessing
    channels happy): senders :meth:`push` tiles in ascending tile id and
    owners :meth:`collect` their owned tiles in ascending tile id, so
    the per-``(src, dst)`` message order matches the per-channel wait
    order on every substrate.  The simulator needs no such care — its
    matcher pairs nonblocking ops by exact tag.
    """

    def __init__(self, ctx, owners) -> None:
        self._ctx = ctx
        self._owners = tuple(owners)
        self._inflight: dict[int, list] = {}
        self._sends: list = []

    async def post_receives(self, owned: "list[int]") -> None:
        """Post one irecv per (owned tile, remote rank) pair."""
        ctx = self._ctx
        for tile_id in owned:
            requests = []
            for src in range(ctx.size):
                if src == ctx.rank:
                    continue
                requests.append(await ctx.irecv(src, tag=_TILE_TAG + tile_id))
            self._inflight[tile_id] = requests

    async def push(self, tile_id: int, payload: Any, nbytes: int) -> None:
        """Send this rank's contribution for ``tile_id`` to its owner."""
        owner = self._owners[tile_id]
        if owner == self._ctx.rank:
            raise ConfigurationError(
                f"rank {owner} owns tile {tile_id}; local contributions "
                "never travel through the router"
            )
        self._sends.append(
            await self._ctx.isend(
                owner, payload, nbytes=nbytes, tag=_TILE_TAG + tile_id
            )
        )

    async def collect(self, tile_id: int) -> list:
        """Wait for ``tile_id``'s remote contributions (ascending src)."""
        requests = self._inflight.pop(tile_id)
        return await self._ctx.wait_all(requests)

    async def flush(self) -> None:
        """Complete every outstanding send (drains send buffers)."""
        sends, self._sends = self._sends, []
        await self._ctx.wait_all(sends)


async def route_tiles(
    ctx,
    owners,
    outgoing: "dict[int, tuple[Any, int]]",
    *,
    push_order=None,
) -> "dict[int, list]":
    """One-shot tile routing: push ``outgoing`` tiles, collect owned ones.

    ``owners[t]`` names tile ``t``'s owner; ``outgoing`` maps the tile
    ids this rank contributes to (remote owners only) to ``(payload,
    nbytes)``.  Returns ``{tile_id: [payload per remote rank, ascending
    src]}`` for every tile this rank owns.  The incremental surface
    (:class:`TileRouter`) is what the tile engine drives so encoding and
    communication overlap; this wrapper is the collective-shaped entry
    point for everything else.

    ``push_order`` permutes the order outgoing tiles are pushed
    (default: ascending tile id) — a callable mapping the sorted tile-id
    list to the order to send.  On the simulator any permutation yields
    bit-identical results (the matcher pairs by exact tag; the schedule
    explorer's property tests exercise exactly this).  On the strictly
    FIFO multiprocessing substrate only the default ascending order
    honours the :class:`TileRouter` ordering contract — leave it alone
    there.
    """
    owners = tuple(owners)
    router = TileRouter(ctx, owners)
    owned = [t for t, owner in enumerate(owners) if owner == ctx.rank]
    await router.post_receives(owned)
    order = sorted(outgoing)
    if push_order is not None:
        order = list(push_order(order))
        if sorted(order) != sorted(outgoing):
            raise ConfigurationError(
                "push_order must permute the outgoing tile ids, "
                f"got {order!r} for {sorted(outgoing)!r}"
            )
    for tile_id in order:
        payload, nbytes = outgoing[tile_id]
        await router.push(tile_id, payload, nbytes)
    received = {tile_id: await router.collect(tile_id) for tile_id in owned}
    await router.flush()
    return received


async def exchange_grouped(
    ctx: RankContext,
    sends: "list[tuple[int, Any, int]]",
    *,
    tag: int = 0,
) -> list[Any]:
    """Grouped k-ary exchange: pairwise full-duplex rounds, in order.

    ``sends`` is a sequence of ``(peer, payload, nbytes)``; each entry is
    one ``sendrecv`` with that peer, and the replies come back in the
    same order.  A single entry is exactly the binary-swap partner
    exchange; ``k - 1`` entries following a radix-k XOR round schedule
    (round ``t`` pairs member ``m`` with ``m ^ t``) realize one grouped
    stage.  The caller must arrange that every round is a perfect
    matching across the group — i.e. if ``a``'s ``t``-th entry targets
    ``b`` then ``b``'s ``t``-th entry targets ``a`` — or the blocking
    rounds deadlock.
    """
    replies: list[Any] = []
    for peer, payload, nbytes in sends:
        replies.append(await ctx.sendrecv(peer, payload, nbytes=nbytes, tag=tag))
    return replies


async def gather(
    ctx: RankContext,
    payload: Any,
    *,
    root: int = 0,
    nbytes: Optional[int] = None,
    algorithm: str = "linear",
) -> Optional[list[Any]]:
    """Gather one payload per rank to ``root``.

    Returns the rank-ordered list at the root and ``None`` elsewhere.

    ``algorithm="linear"`` (default) is ``P-1`` serialized receives at
    the root: the paper's assumption that the final image is simply
    collected after compositing, and the accounting every pinned counter
    was recorded against.  ``algorithm="tree"`` is a binomial-tree
    gather — ``ceil(log2 P)`` rounds where each subtree root forwards
    its accumulated slice — which trades larger forwarded messages for
    exponentially fewer serialized root receives (the at-scale choice
    for ``P >= 256``).
    """
    if not (0 <= root < ctx.size):
        raise ConfigurationError(f"gather root {root} out of range")
    if algorithm == "tree":
        return await _gather_tree(ctx, payload, root=root, nbytes=nbytes)
    if algorithm != "linear":
        raise ConfigurationError(
            f"unknown gather algorithm {algorithm!r}; choose 'linear' or 'tree'"
        )
    if ctx.rank == root:
        out: list[Any] = [None] * ctx.size
        out[root] = payload
        for src in range(ctx.size):
            if src == root:
                continue
            out[src] = await ctx.recv(src, tag=_GATHER_TAG)
        return out
    await ctx.send(root, payload, nbytes=nbytes, tag=_GATHER_TAG)
    return None


async def _gather_tree(
    ctx: RankContext,
    payload: Any,
    *,
    root: int,
    nbytes: Optional[int],
) -> Optional[list[Any]]:
    """Binomial-tree gather (the mirror image of :func:`bcast`).

    Each rank accumulates ``{vrank: payload}`` from progressively larger
    subtrees, then forwards the dict to its parent; doubling distances
    ascend so round ``d`` merges subtrees of size ``d``.  Message cost is
    priced per hop on the actual forwarded chunk (the sum of its members'
    ``nbytes``), so the modelled traffic reflects the real tree volume.
    """
    size = ctx.size
    vrank = (ctx.rank - root) % size
    own_nbytes = payload_nbytes(payload) if nbytes is None else nbytes
    chunk: dict[int, Any] = {vrank: payload}
    chunk_nbytes = own_nbytes
    d = 1
    while d < size:
        if vrank % (2 * d) == 0:
            src_v = vrank + d
            if src_v < size:
                src = (src_v + root) % size
                theirs, theirs_nbytes = await ctx.recv(src, tag=_GATHER_TAG + d)
                chunk.update(theirs)
                chunk_nbytes += theirs_nbytes
        elif vrank % (2 * d) == d:
            dst = (vrank - d + root) % size
            await ctx.send(
                dst, (chunk, chunk_nbytes), nbytes=chunk_nbytes, tag=_GATHER_TAG + d
            )
            return None
        d <<= 1
    out: list[Any] = [None] * size
    for v, item in chunk.items():
        out[(v + root) % size] = item
    return out


async def bcast(
    ctx: RankContext,
    payload: Any,
    *,
    root: int = 0,
    nbytes: Optional[int] = None,
) -> Any:
    """Broadcast ``payload`` from ``root`` to every rank (binomial tree).

    Every rank (including the root) returns the broadcast value.
    """
    if not (0 <= root < ctx.size):
        raise ConfigurationError(f"bcast root {root} out of range")
    size = ctx.size
    # Rotate so the algorithm can assume root == 0.
    vrank = (ctx.rank - root) % size
    value = payload if ctx.rank == root else None
    have = ctx.rank == root
    span = 1
    while span < size:
        span <<= 1
    span >>= 1
    # Binomial: at round with distance d (descending), holders with
    # vrank % (2d) == 0 send to vrank + d.
    d = span
    while d >= 1:
        if have and vrank % (2 * d) == 0 and vrank + d < size:
            dst = (vrank + d + root) % size
            await ctx.send(dst, value, nbytes=nbytes, tag=_BCAST_TAG)
        elif not have and vrank % (2 * d) == d:
            src = (vrank - d + root) % size
            value = await ctx.recv(src, tag=_BCAST_TAG)
            have = True
        d >>= 1
    return value


async def allreduce(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any],
    *,
    nbytes: Optional[int] = None,
) -> Any:
    """All-reduce with an arbitrary associative/commutative ``op``.

    Recursive doubling when ``P`` is a power of two, otherwise a
    gather-to-0/compute/broadcast fallback.  ``nbytes`` prices each hop;
    when omitted it is inferred from the payload.
    """
    size = ctx.size
    if size == 1:
        return value
    if size & (size - 1) == 0:
        acc = value
        d = 1
        while d < size:
            peer = ctx.rank ^ d
            theirs = await ctx.sendrecv(
                peer,
                acc,
                nbytes=payload_nbytes(acc) if nbytes is None else nbytes,
                tag=_ALLREDUCE_TAG + d,
            )
            # Apply in rank-independent order so every rank computes the
            # bit-identical result even for weakly associative ops.
            acc = op(acc, theirs) if ctx.rank < peer else op(theirs, acc)
            d <<= 1
        return acc
    gathered = await gather(ctx, value, root=0, nbytes=nbytes)
    result = None
    if ctx.rank == 0:
        assert gathered is not None
        result = gathered[0]
        for item in gathered[1:]:
            result = op(result, item)
    return await bcast(ctx, result, root=0, nbytes=nbytes)
