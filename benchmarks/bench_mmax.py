"""Benchmark E9 — the paper's eq. (9) M_max ordering at paper scale.

``M_max(BS) >= M_max(BSBR) >= M_max(BSBRC) >= M_max(BSLC)`` across all
four datasets and P = 2..64 at 384x384, measured from the real
serialized message sizes (5% run-code tolerance on the BSBRC/BSLC leg,
matching the paper's "in general" wording).
"""

from conftest import PAPER_RANKS, cell, emit
from repro.experiments.mmax import format_mmax, run_mmax
from repro.volume.datasets import PAPER_DATASETS


def test_bench_mmax_ordering(benchmark):
    from repro.experiments.harness import workload

    for dataset in PAPER_DATASETS:
        workload(dataset, 384, max_ranks=64)
    report = benchmark.pedantic(
        lambda: run_mmax(rank_counts=PAPER_RANKS), rounds=1, iterations=1
    )
    emit("mmax", format_mmax(report))
    assert report.ordering_holds, report.violations

    # The strict legs hold without any tolerance.
    for dataset in PAPER_DATASETS:
        for p in PAPER_RANKS:
            c = cell(report.rows, dataset, p)
            assert c["bs"].mmax_bytes >= c["bsbr"].mmax_bytes >= c["bsbrc"].mmax_bytes

    # BS's M_max is content-independent and huge; the sparse methods cut
    # it by an order of magnitude on the sparse datasets.
    for dataset in ("engine_high", "cube"):
        c = cell(report.rows, dataset, 64)
        assert c["bs"].mmax_bytes / c["bslc"].mmax_bytes > 10
