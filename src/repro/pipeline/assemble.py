"""The one final-image assembly routine shared by every backend path.

A compositing outcome gives each rank a disjoint *owned* portion of the
final image, either as a contiguous rect or as a flat index set (BSLC).
Exactly one scatter loop in the codebase turns a collection of owned
tiles back into a display image — the simulator gather, the
multiprocessing cross-check, and the MPI entry point all funnel through
:func:`assemble_tiles` (previously each carried its own copy).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional, Sequence

import numpy as np

from ..compositing.base import CompositeOutcome
from ..render.image import SubImage
from ..types import Rect

__all__ = ["OwnedTile", "tile_from_outcome", "assemble_tiles", "assemble_outcomes"]


class OwnedTile(NamedTuple):
    """One rank's owned pixels, detached from its full-frame buffer.

    Exactly one of ``owned_rect`` / ``owned_indices`` is set;
    ``values_i``/``values_a`` are the flat owned intensity/opacity values
    in row-major (rect) or index (indices) order.  This is the wire shape
    of the final gather: small enough to ship, complete enough to
    assemble.
    """

    owned_rect: Optional[Rect]
    owned_indices: Optional[np.ndarray]
    values_i: np.ndarray
    values_a: np.ndarray


def tile_from_outcome(outcome: CompositeOutcome) -> OwnedTile:
    """Extract the owned tile of one compositing outcome."""
    values_i, values_a = outcome.owned_values()
    return OwnedTile(outcome.owned_rect, outcome.owned_indices, values_i, values_a)


def assemble_tiles(
    tiles: Iterable[OwnedTile], height: int, width: int
) -> SubImage:
    """Scatter every owned tile into a blank ``height x width`` image.

    The single authoritative rect/indices scatter loop: rect tiles write
    their block, index tiles write their flat positions.  Tiles are
    assumed disjoint (``validate_ownership`` checks that invariant).
    """
    final = SubImage.blank(height, width)
    flat_i = final.intensity.ravel()
    flat_a = final.opacity.ravel()
    for owned_rect, owned_indices, values_i, values_a in tiles:
        if owned_rect is not None:
            if owned_rect.is_empty:
                continue
            rows, cols = owned_rect.slices()
            final.intensity[rows, cols] = np.asarray(values_i).reshape(
                owned_rect.height, owned_rect.width
            )
            final.opacity[rows, cols] = np.asarray(values_a).reshape(
                owned_rect.height, owned_rect.width
            )
        else:
            flat_i[owned_indices] = values_i
            flat_a[owned_indices] = values_a
    return final


def assemble_outcomes(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> SubImage:
    """Merge every rank's owned pixels into the display image."""
    return assemble_tiles((tile_from_outcome(o) for o in outcomes), height, width)
