"""Tests for analysis.metrics, tables and plots."""

import pytest

from repro.analysis.metrics import (
    MethodMeasurement,
    check_mmax_ordering,
    measure,
    speedup,
)
from repro.analysis.plots import ascii_line_plot, series_summary
from repro.analysis.tables import format_generic, format_mmax_table, format_paper_table
from repro.cluster.stats import RankStats, RunResult


def make_result(comp=(1.0, 2.0), comm=(0.5, 0.25), recv=(100, 300)):
    ranks = []
    for idx, (c, m, b) in enumerate(zip(comp, comm, recv)):
        rs = RankStats(rank=idx)
        bucket = rs.stage(0)
        bucket.comp_time = c
        bucket.comm_time = m
        bucket.bytes_recv = b
        bucket.counters = {"over": 10 * (idx + 1), "encode": 5}
        ranks.append(rs)
    return RunResult(num_ranks=len(ranks), returns=[None] * len(ranks),
                     rank_stats=ranks, makespan=max(c + m for c, m in zip(comp, comm)))


def row(method="bs", dataset="engine_low", p=2, t_comp=0.1, t_comm=0.05, mmax=100):
    return MethodMeasurement(
        method=method, dataset=dataset, image_size=384, num_ranks=p,
        t_comp=t_comp, t_comm=t_comm, mmax_bytes=mmax, makespan=t_comp + t_comm,
        bytes_total=mmax * p, pixels_composited=10, pixels_encoded=5,
    )


class TestRunResultReductions:
    def test_critical_rank_is_max_total(self):
        result = make_result(comp=(1.0, 2.0), comm=(0.5, 0.25))
        assert result.critical_rank == 1
        assert result.t_comp == 2.0
        assert result.t_comm == 0.25
        assert result.t_total == 2.25

    def test_columns_additive(self):
        result = make_result()
        assert result.t_total == pytest.approx(result.t_comp + result.t_comm)

    def test_mmax(self):
        assert make_result().mmax_bytes == 300

    def test_means_and_maxes(self):
        result = make_result(comp=(1.0, 3.0), comm=(2.0, 0.0))
        assert result.t_comp_max == 3.0
        assert result.t_comm_max == 2.0
        assert result.t_comp_mean == 2.0

    def test_counter_total(self):
        assert make_result().counter_total("over") == 30

    def test_per_stage_totals(self):
        totals = make_result().per_stage_totals()
        assert totals[0]["comp_time"] == pytest.approx(3.0)
        assert totals[0]["bytes_recv"] == 400


class TestMeasure:
    def test_measure_builds_row(self):
        result = make_result()
        m = measure(result, method="bsbrc", dataset="cube", image_size=384)
        assert m.method == "bsbrc"
        assert m.t_total == pytest.approx(result.t_total)
        assert m.mmax_bytes == 300
        assert m.pixels_composited == 30

    def test_dict_roundtrip(self):
        m = row()
        again = MethodMeasurement.from_dict(m.as_dict())
        assert again == m


class TestMmaxOrdering:
    def test_holds(self):
        assert check_mmax_ordering({"bs": 100, "bsbr": 80, "bsbrc": 60, "bslc": 50}) == []

    def test_violation_reported(self):
        violations = check_mmax_ordering({"bs": 10, "bsbr": 80})
        assert len(violations) == 1
        assert "bs" in violations[0]

    def test_missing_methods_skipped(self):
        assert check_mmax_ordering({"bs": 100, "bslc": 50}) == []

    def test_tolerances(self):
        mmax = {"bsbrc": 95, "bslc": 100}
        assert check_mmax_ordering(mmax)
        assert check_mmax_ordering(mmax, tolerance_bytes=5) == []
        assert check_mmax_ordering(mmax, rel_tolerance=0.06) == []


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestTables:
    def test_paper_table_structure(self):
        rows = [
            row(method=m, p=p)
            for m in ("bs", "bsbr")
            for p in (2, 4)
        ]
        text = format_paper_table(rows, methods=("bs", "bsbr"), datasets=("engine_low",))
        assert "engine_low" in text
        assert "BS:Tcomp" in text and "BSBR:Ttotal" in text
        assert "(Time unit: ms)" in text
        # both P rows present
        assert "\n" in text

    def test_missing_cells_dash(self):
        rows = [row(method="bs", p=2)]
        text = format_paper_table(rows, methods=("bs", "bsbr"), datasets=("engine_low",))
        assert "-" in text

    def test_mmax_table(self):
        rows = [row(method=m, mmax=100 - i) for i, m in enumerate(("bs", "bsbr"))]
        text = format_mmax_table(rows, methods=("bs", "bsbr"), datasets=("engine_low",))
        assert "100" in text and "99" in text

    def test_generic_table_alignment(self):
        text = format_generic(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1


class TestPlots:
    def test_plot_contains_markers_and_legend(self):
        series = {"BSBR": [5.0, 4.0, 3.0], "BSBRC": [4.0, 3.0, 2.0]}
        text = ascii_line_plot(series, [2, 4, 8], title="T", y_label="ms")
        assert "legend" in text
        assert "BSBR" in text and "BSBRC" in text
        assert "o" in text and "x" in text

    def test_plot_single_point(self):
        text = ascii_line_plot({"A": [1.0]}, [2])
        assert "A" in text

    def test_plot_flat_series(self):
        text = ascii_line_plot({"A": [3.0, 3.0]}, [1, 2])
        assert "A" in text

    def test_plot_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"A": [1.0, 2.0]}, [1])

    def test_plot_requires_series(self):
        with pytest.raises(ValueError):
            ascii_line_plot({}, [1])

    def test_series_summary_values(self):
        text = series_summary({"A": [1.5, 2.5]}, [2, 4])
        assert "1.5" in text and "2.5" in text
