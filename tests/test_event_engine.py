"""Event engine vs lockstep oracle: bit-identical results, by construction.

The min-heap event engine and the retained round-robin lockstep engine
share every matching/pricing routine; only the order in which ranks are
*scheduled* differs, and blocking-op completions are pure functions of
the two posts.  These tests pin that equivalence end to end: raw
simulator programs, per-rank trace sequences, full compositing runs
across every method family, and the deadlock diagnostics both engines
must produce identically.
"""

import pytest

from repro.cluster.model import IDEALIZED, SP2
from repro.cluster.simulator import ENGINES, Simulator
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.experiments.scale import VIEW_DIR, synthetic_subimages
from repro.pipeline.system import run_compositing
from repro.volume.partition import recursive_bisect


def run_both(num_ranks, program_factory, model=IDEALIZED, **kwargs):
    results = {}
    for engine in ENGINES:
        sim = Simulator(num_ranks, model, engine=engine, **kwargs)
        results[engine] = (sim.run(program_factory), sim)
    return results


def assert_equivalent(results):
    (ev, _), (ls, _) = results["event"], results["lockstep"]
    assert ev.makespan == ls.makespan
    assert ev.returns == ls.returns
    for re_, rl in zip(ev.rank_stats, ls.rank_stats):
        assert re_.comm_time == rl.comm_time
        assert re_.comp_time == rl.comp_time
        assert re_.bytes_sent == rl.bytes_sent
        assert re_.msgs_sent == rl.msgs_sent


def per_rank_trace(sim):
    by_rank = {}
    for ev in sim.trace_events:
        by_rank.setdefault(ev.rank, []).append((ev.time, ev.kind, ev.detail))
    return by_rank


class TestEngineSelection:
    def test_default_is_event(self):
        assert Simulator(2, IDEALIZED).engine == "event"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(2, IDEALIZED, engine="quantum")


class TestRawPrograms:
    def test_ring_pipeline(self):
        def factory(ctx):
            async def program():
                size, rank = ctx.size, ctx.rank
                for frame in range(3):
                    if rank == 0:
                        if frame:
                            await ctx.recv(size - 1, tag=frame - 1)
                        await ctx.send(1, b"t", nbytes=512, tag=frame)
                    else:
                        await ctx.recv(rank - 1, tag=frame)
                        await ctx.compute(0.5)
                        await ctx.send((rank + 1) % size, b"t", nbytes=512, tag=frame)
                if rank == 0:
                    await ctx.recv(size - 1, tag=2)

            return program()

        assert_equivalent(run_both(8, factory))

    def test_binary_swap_rounds(self):
        def factory(ctx):
            async def program():
                size, rank = ctx.size, ctx.rank
                nbytes = 4096
                for k in range(size.bit_length() - 1):
                    nbytes //= 2
                    await ctx.sendrecv(rank ^ (1 << k), b"x", nbytes=nbytes, tag=k)
                    await ctx.compute(0.25)
                await ctx.barrier()

            return program()

        assert_equivalent(run_both(16, factory))

    def test_nonblocking_wait_all(self):
        def factory(ctx):
            async def program():
                size, rank = ctx.size, ctx.rank
                reqs = [
                    await ctx.isend((rank + 1) % size, b"a", nbytes=128, tag=7),
                    await ctx.irecv((rank - 1) % size, tag=7),
                ]
                await ctx.wait_all(reqs)
                await ctx.compute(1.0)

            return program()

        assert_equivalent(run_both(8, factory))

    def test_per_rank_traces_identical(self):
        # The global interleaving of trace events legitimately differs
        # between schedulers; each rank's *own* ordered sequence may not.
        def factory(ctx):
            async def program():
                size, rank = ctx.size, ctx.rank
                await ctx.compute(float(rank + 1))
                await ctx.sendrecv(rank ^ 1, b"p", nbytes=256, tag=0)
                if rank % 2 == 0:
                    await ctx.send(rank + 1, b"q", nbytes=64, tag=1)
                else:
                    await ctx.recv(rank - 1, tag=1)
                await ctx.barrier()

            return program()

        results = run_both(8, factory, trace=True)
        assert per_rank_trace(results["event"][1]) == per_rank_trace(
            results["lockstep"][1]
        )

    def test_determinism_across_runs(self):
        def factory(ctx):
            async def program():
                size, rank = ctx.size, ctx.rank
                await ctx.sendrecv(rank ^ 1, b"x", nbytes=1024, tag=0)
                await ctx.sendrecv(rank ^ 2, b"y", nbytes=512, tag=1)

            return program()

        sims = [Simulator(8, SP2, engine="event", trace=True) for _ in range(2)]
        runs = [sim.run(factory) for sim in sims]
        assert runs[0].makespan == runs[1].makespan
        assert [s.trace_events for s in sims][0] == [s.trace_events for s in sims][1]

    def test_max_steps_enforced(self):
        def factory(ctx):
            async def program():
                while True:
                    await ctx.compute(0.001)

            return program()

        with pytest.raises(SimulationError, match="max_steps"):
            Simulator(2, IDEALIZED, engine="event", max_steps=100).run(factory)


class TestDeadlockDiagnostics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_last_progress_reported(self, engine):
        def factory(ctx):
            async def program():
                await ctx.compute(1.0 + ctx.rank)
                await ctx.recv((ctx.rank + 1) % ctx.size, tag=0)  # cycle

            return program()

        with pytest.raises(DeadlockError) as info:
            Simulator(4, IDEALIZED, engine=engine).run(factory)
        err = info.value
        assert set(err.blocked) == {0, 1, 2, 3}
        # Each rank last progressed when it posted its recv, at t=1+rank.
        assert err.last_progress == {r: 1.0 + r for r in range(4)}
        assert "idle since" in str(err)

    def test_engines_agree_on_deadlock(self):
        def factory(ctx):
            async def program():
                if ctx.rank == 0:
                    await ctx.recv(1, tag=9)  # never sent

            return program()

        diagnostics = []
        for engine in ENGINES:
            with pytest.raises(DeadlockError) as info:
                Simulator(2, IDEALIZED, engine=engine).run(factory)
            diagnostics.append((info.value.blocked, info.value.last_progress))
        assert diagnostics[0] == diagnostics[1]


class TestCompositingEquivalence:
    """Every method family, event vs lockstep, exact equality."""

    METHODS = [
        ("bs", {}),
        ("bsbr", {}),
        ("bslc", {}),
        ("bsbrc", {}),
        ("direct", {}),
        ("direct-async", {}),
        ("radix-k:rect-rle", {"radix": (4, 2)}),
    ]

    @pytest.mark.parametrize("method,options", METHODS, ids=[m for m, _ in METHODS])
    def test_methods_identical_across_engines(self, method, options):
        import numpy as np

        num_ranks = 8
        plan = recursive_bisect((16, 16, 16), num_ranks)
        runs = {}
        for engine in ENGINES:
            images = synthetic_subimages(num_ranks, 32, 0.3)
            runs[engine] = run_compositing(
                images, method, plan, VIEW_DIR, SP2, engine=engine, **options
            )
        ev, ls = runs["event"], runs["lockstep"]
        assert ev.stats.makespan == ls.stats.makespan
        for oe, ol in zip(ev.outcomes, ls.outcomes):
            assert np.array_equal(oe.image.intensity, ol.image.intensity)
            assert np.array_equal(oe.image.opacity, ol.image.opacity)
        for se, sl in zip(ev.stats.rank_stats, ls.stats.rank_stats):
            assert se.bytes_sent == sl.bytes_sent
            assert se.msgs_sent == sl.msgs_sent
            assert se.comm_time == sl.comm_time
            assert se.comp_time == sl.comp_time
            for stage in se.stages:
                be, bl = se.stages[stage], sl.stages[stage]
                assert be.bytes_sent == bl.bytes_sent
                assert be.msgs_sent == bl.msgs_sent
                assert be.counters == bl.counters
