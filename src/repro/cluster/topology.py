"""Communication schedules for the compositing algorithms.

Binary swap pairs ranks hypercube-style: at stage ``k`` (0-based) of
``log2 P`` stages, rank ``r`` exchanges with ``r XOR 2**k``.  With the
volume partitioned by recursive bisection in the *same* bit order (rank
bit ``k`` selects the half of the ``k``-th split, counting from the last
split), the pair at stage ``k`` always holds the two halves of one
bisection node, so a single plane separates their data and the over
operation's front/back order is well defined (Ma et al. 1994).

This module also provides schedules for the related-work baselines:
binary-tree combining and ring schedules for parallel-pipeline
compositing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "is_power_of_two",
    "log2_int",
    "binary_swap_partner",
    "binary_swap_schedule",
    "keeps_low_half",
    "binary_tree_schedule",
    "ring_next",
    "ring_prev",
    "TreeStep",
]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; raises for non-powers-of-two."""
    if not is_power_of_two(n):
        raise ConfigurationError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def binary_swap_partner(rank: int, stage: int, size: int) -> int:
    """Partner of ``rank`` at 0-based ``stage`` in a ``size``-rank swap."""
    steps = log2_int(size)
    if not (0 <= stage < steps):
        raise ConfigurationError(f"stage {stage} out of range for P={size} ({steps} stages)")
    if not (0 <= rank < size):
        raise ConfigurationError(f"rank {rank} out of range for P={size}")
    return rank ^ (1 << stage)


def binary_swap_schedule(rank: int, size: int) -> list[int]:
    """All ``log2 P`` partners of ``rank``, in stage order."""
    return [binary_swap_partner(rank, k, size) for k in range(log2_int(size))]


def keeps_low_half(rank: int, stage: int) -> bool:
    """Whether ``rank`` keeps the first (low-coordinate) half at ``stage``.

    Convention: the pair member with the *zero* bit at position ``stage``
    keeps the first half of the current image region and sends the second;
    its partner does the opposite.  This makes the final ownership map a
    bit-reversal-style interleaving identical for every method.
    """
    return (rank >> stage) & 1 == 0


@dataclass(frozen=True, slots=True)
class TreeStep:
    """One step of a binary-tree combine for a given rank.

    ``role`` is ``"send"`` (this rank forwards its data to ``peer`` and
    drops out) or ``"recv"`` (this rank receives ``peer``'s data and
    continues).
    """

    stage: int
    role: str
    peer: int


def binary_tree_schedule(rank: int, size: int) -> list[TreeStep]:
    """Binary-tree combining schedule (Ahrens & Painter style baseline).

    At stage ``k``, ranks that are multiples of ``2**(k+1)`` receive from
    ``rank + 2**k``; the senders are done afterwards.  Rank 0 ends up with
    the full image.
    """
    steps: list[TreeStep] = []
    span = 1
    stage = 0
    for stage in range(log2_int(size)):
        span = 1 << stage
        group = 1 << (stage + 1)
        if rank % group == 0:
            peer = rank + span
            if peer < size:
                steps.append(TreeStep(stage=stage, role="recv", peer=peer))
        elif rank % group == span:
            steps.append(TreeStep(stage=stage, role="send", peer=rank - span))
            break  # sender drops out of later stages
    return steps


def ring_next(rank: int, size: int) -> int:
    """Successor on the ring (parallel-pipeline compositing)."""
    if size < 1:
        raise ConfigurationError("ring requires at least one rank")
    return (rank + 1) % size


def ring_prev(rank: int, size: int) -> int:
    """Predecessor on the ring."""
    if size < 1:
        raise ConfigurationError("ring requires at least one rank")
    return (rank - 1) % size
