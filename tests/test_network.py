"""The Network/Topology plane: pricing, parsing, and its two contracts.

Two properties anchor the plane (ISSUE satellite): contention can only
*delay* — no topology ever beats the paper's flat link on the same
workload — and a topology whose shared links are free (single-switch
fat-tree, or infinite capacity at zero hop latency) reproduces flat
timings *exactly*, not approximately.
"""

import math

import numpy as np
import pytest

from repro.cluster.backend import MPBackend, MPIBackend
from repro.cluster.model import (
    IDEALIZED,
    SP2,
    ContentionNetwork,
    DragonflyNetwork,
    FatTreeNetwork,
    FlatNetwork,
    NETWORKS,
    TorusNetwork,
    make_network,
)
from repro.errors import ConfigurationError
from repro.experiments.scale import VIEW_DIR, synthetic_subimages
from repro.pipeline.config import RunConfig
from repro.pipeline.system import run_compositing
from repro.volume.partition import recursive_bisect


def composite_makespan(network, num_ranks=16, method="bsbrc"):
    plan = recursive_bisect((16, 16, 16), num_ranks)
    images = synthetic_subimages(num_ranks, 32, 0.3)
    run = run_compositing(images, method, plan, VIEW_DIR, SP2, network=network)
    return run.stats.makespan, run


class TestFlatNetwork:
    def test_matches_model_pricing(self):
        net = FlatNetwork(SP2)
        net.reset(8)
        for nbytes in (0, 1, 4096):
            assert net.deliver(0, 5, nbytes, 2.5) == 2.5 + SP2.message_time(nbytes)

    def test_none_network_equals_flat_network(self):
        bare, _ = composite_makespan(None)
        flat, _ = composite_makespan(FlatNetwork(SP2))
        assert bare == flat


class TestContentionPricing:
    def test_shared_link_serializes(self):
        net = FatTreeNetwork(SP2, radix=4, capacity=2.0)
        net.reset(16)
        # Two messages from switch 0 to switch 1 share both links.
        first = net.deliver(0, 4, 1000, 0.0)
        second = net.deliver(1, 5, 1000, 0.0)
        assert second > first  # queued behind the first crossing
        crossing = 1000 * SP2.tc / 2.0
        assert first == (SP2.message_time(1000) + crossing) + crossing

    def test_intra_switch_is_flat(self):
        net = FatTreeNetwork(SP2, radix=8)
        net.reset(16)
        assert net.deliver(0, 7, 2048, 1.0) == 1.0 + SP2.message_time(2048)

    def test_reset_clears_queues(self):
        net = FatTreeNetwork(SP2, radix=2, capacity=1.0)
        net.reset(4)
        first = net.deliver(0, 2, 4096, 0.0)
        net.reset(4)
        assert net.deliver(0, 2, 4096, 0.0) == first

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreeNetwork(SP2, capacity=0.0)
        with pytest.raises(ConfigurationError):
            FatTreeNetwork(SP2, hop_latency=-1.0)
        with pytest.raises(ConfigurationError):
            FatTreeNetwork(SP2, radix=0)
        with pytest.raises(ConfigurationError):
            TorusNetwork(SP2, capacity=float("nan"))

    def test_torus_dims_must_tile_ranks(self):
        net = TorusNetwork(SP2, dims=(3, 5))
        with pytest.raises(ConfigurationError):
            net.reset(16)
        net.reset(15)  # 3x5 tiles 15 ranks

    def test_dragonfly_global_links_are_slower(self):
        net = DragonflyNetwork(SP2, group_size=4, capacity=8.0, global_capacity=1.0)
        net.reset(16)
        local = net.link_capacity(("exit", 0))
        global_ = net.link_capacity(("global", 0, 1))
        assert local == 8.0 and global_ == 1.0


class TestContentionMonotonicity:
    """Contention never decreases the makespan versus the flat link."""

    TOPOLOGIES = [
        ("fat-tree", lambda: FatTreeNetwork(SP2, radix=4, capacity=2.0)),
        ("torus", lambda: TorusNetwork(SP2, capacity=1.0)),
        ("dragonfly", lambda: DragonflyNetwork(SP2, group_size=4, global_capacity=0.5)),
        ("fat-tree-latency", lambda: FatTreeNetwork(SP2, radix=4, hop_latency=1e-4)),
    ]

    @pytest.mark.parametrize("name,make", TOPOLOGIES, ids=[n for n, _ in TOPOLOGIES])
    @pytest.mark.parametrize("method", ["bs", "bsbrc", "direct"])
    def test_never_faster_than_flat(self, name, make, method):
        flat, _ = composite_makespan(None, method=method)
        contended, _ = composite_makespan(make(), method=method)
        assert contended >= flat

    def test_point_to_point_monotone(self):
        flat = FlatNetwork(SP2)
        flat.reset(16)
        net = TorusNetwork(SP2, capacity=0.5)
        net.reset(16)
        for src, dst, nbytes, start in [(0, 15, 1024, 0.0), (3, 9, 64, 1.0), (7, 7, 0, 2.0)]:
            assert net.deliver(src, dst, nbytes, start) >= flat.deliver(
                src, dst, nbytes, start
            )


class TestExactFlatDegradation:
    """Free shared links reproduce flat timings exactly (bit-equal)."""

    FREE = [
        ("single-switch-fat-tree", lambda: FatTreeNetwork(SP2, radix=64, capacity=2.0)),
        (
            "fat-tree-inf",
            lambda: FatTreeNetwork(SP2, radix=4, capacity=math.inf, hop_latency=0.0),
        ),
        ("torus-inf", lambda: TorusNetwork(SP2, capacity=math.inf)),
        (
            "dragonfly-inf",
            lambda: DragonflyNetwork(
                SP2, group_size=4, capacity=math.inf, global_capacity=math.inf
            ),
        ),
    ]

    @pytest.mark.parametrize("name,make", FREE, ids=[n for n, _ in FREE])
    def test_exactly_flat(self, name, make):
        flat, flat_run = composite_makespan(None)
        free, free_run = composite_makespan(make())
        assert free == flat  # exact, not approx: the fast path keeps no state
        for oa, ob in zip(flat_run.outcomes, free_run.outcomes):
            assert np.array_equal(oa.image.intensity, ob.image.intensity)
        for sa, sb in zip(flat_run.stats.rank_stats, free_run.stats.rank_stats):
            assert sa.comm_time == sb.comm_time
            assert sa.bytes_sent == sb.bytes_sent


class TestMakeNetwork:
    def test_registry_names(self):
        assert set(NETWORKS) == {"flat", "fat-tree", "torus", "dragonfly"}

    def test_defaults_and_passthrough(self):
        assert make_network(None, SP2).name == "flat"
        assert make_network("flat", SP2).name == "flat"
        net = FatTreeNetwork(SP2)
        assert make_network(net, SP2) is net

    def test_spec_options(self):
        net = make_network("fat-tree:radix=8,capacity=2.5", SP2)
        assert isinstance(net, FatTreeNetwork)
        assert net.radix == 8 and net.capacity == 2.5

    def test_dims_and_inf_coercion(self):
        net = make_network("torus:dims=4x8,capacity=inf", SP2)
        assert net.dims == (4, 8) and net.capacity == math.inf

    def test_override_beats_default_but_not_spec(self):
        net = make_network("fat-tree", SP2, capacity=9.0)
        assert net.capacity == 9.0
        none_override = make_network("fat-tree:capacity=3.0", SP2, capacity=None)
        assert none_override.capacity == 3.0

    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            make_network("hypercube", SP2)

    def test_unknown_option(self):
        with pytest.raises(ConfigurationError, match="option"):
            make_network("fat-tree:bogus=1", SP2)

    def test_bad_value(self):
        with pytest.raises(ConfigurationError):
            make_network("fat-tree:radix=fast", SP2)


class TestRunConfigIntegration:
    def test_topology_validated_at_construction(self):
        with pytest.raises(ConfigurationError):
            RunConfig(topology="hypercube")
        with pytest.raises(ConfigurationError):
            RunConfig(topology="fat-tree:bogus=1")
        with pytest.raises(ConfigurationError):
            RunConfig(link_capacity=0.0)

    def test_flat_builds_no_network(self):
        assert RunConfig().build_network() is None
        assert RunConfig(topology="flat", link_capacity=2.0).build_network() is None

    def test_topology_builds_network_with_capacity(self):
        net = RunConfig(topology="torus", link_capacity=2.0).build_network()
        assert isinstance(net, TorusNetwork)
        assert net.capacity == 2.0


class TestHardwareBackendsRejectTopologies:
    @pytest.mark.parametrize("backend_cls", [MPBackend, MPIBackend])
    def test_non_flat_network_rejected(self, backend_cls):
        net = FatTreeNetwork(IDEALIZED, radix=2)
        with pytest.raises(ConfigurationError, match="--backend 'sim'"):
            backend_cls().run(2, lambda ctx: None, network=net)

    @pytest.mark.parametrize("backend_cls", [MPBackend, MPIBackend])
    def test_flat_network_accepted_by_validator(self, backend_cls):
        from repro.cluster.backend import _require_flat_network

        _require_flat_network(backend_cls.name, None)
        _require_flat_network(backend_cls.name, FlatNetwork(IDEALIZED))
