"""Grid equivalence: every schedule × codec combo, priced and verified.

Three layers of guarantees:

* **pixel equivalence** — every compatible combo, at every small P, on a
  sparse and a dense workload, reproduces the sequential depth-order
  composite and yields a valid ownership partition;
* **paper parity** — the four paper aliases (``bs``/``bsbr``/``bslc``/
  ``bsbrc``), now thin combos over the engine, are *bit-for-bit*
  identical to the pre-refactor hand-written classes: same pixels and
  the same per-rank per-stage byte/message/counter accounting, which is
  also pinned against ``tests/data/seed_counters.json`` (recorded from
  the seed implementations) so a regression in either plane is caught
  even if both drift together;
* **radix degeneracy** — ``radix-k`` with ``[2]*log2(P)`` equals binary
  swap exactly, and a non-trivial radix runs end-to-end on the simulator
  and the multiprocessing backend, with the method name visible in the
  run-timeline.
"""

import json
import os

import numpy as np
import pytest

from conftest import rendered_workload
from repro.cluster.model import SP2
from repro.compositing.bs import BinarySwap
from repro.compositing.bsbr import BinarySwapBoundingRect
from repro.compositing.bsbrc import BinarySwapBoundingRectCompression
from repro.compositing.bslc import BinarySwapLoadBalancedCompression
from repro.compositing.registry import COMBO_ALIASES, available_methods
from repro.pipeline.system import assemble_final, run_compositing, validate_ownership

pytestmark = pytest.mark.grid

LEGACY_CLASSES = {
    "bs": BinarySwap,
    "bsbr": BinarySwapBoundingRect,
    "bslc": BinarySwapLoadBalancedCompression,
    "bsbrc": BinarySwapBoundingRectCompression,
}

ALL_COMBOS = tuple(m for m in available_methods() if ":" in m)

#: sparse (engine block, mostly background) and dense (solid cube).
GRID_DATASETS = ("engine_low", "cube")
GRID_RANKS = (2, 4, 8)

SEED_COUNTERS = os.path.join(os.path.dirname(__file__), "data", "seed_counters.json")


def _run(subimages, method, plan, camera, **options):
    return run_compositing(
        [img.copy() for img in subimages], method, plan, camera.view_dir, SP2,
        **options,
    )


def _stage_accounting(run):
    """Per-rank per-stage wire accounting, as plain comparable data."""
    ranks = []
    for rank_stats in run.stats.rank_stats:
        stages = {}
        for idx in sorted(rank_stats.stages):
            st = rank_stats.stages[idx]
            stages[str(idx)] = {
                "bytes_sent": st.bytes_sent,
                "bytes_recv": st.bytes_recv,
                "msgs_sent": st.msgs_sent,
                "msgs_recv": st.msgs_recv,
                "counters": {k: int(v) for k, v in sorted(st.counters.items())},
            }
        ranks.append(stages)
    return ranks


def _images_equal(a, b) -> bool:
    return np.array_equal(a.intensity, b.intensity) and np.array_equal(
        a.opacity, b.opacity
    )


# ---------------------------------------------------------------------------
# Every combo × P × sparsity regime vs the sequential oracle
# ---------------------------------------------------------------------------
class TestComboGrid:
    @pytest.mark.parametrize("num_ranks", GRID_RANKS)
    @pytest.mark.parametrize("dataset", GRID_DATASETS)
    @pytest.mark.parametrize("combo", ALL_COMBOS)
    def test_combo_matches_oracle_and_partitions(self, combo, dataset, num_ranks):
        from conftest import reference_image

        subimages, plan, camera = rendered_workload(dataset, num_ranks)
        reference = reference_image(dataset, num_ranks)
        run = _run(subimages, combo, plan, camera)
        final = assemble_final(run.outcomes, *subimages[0].shape)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *subimages[0].shape)


# ---------------------------------------------------------------------------
# Paper aliases vs the pre-refactor classes: bit-for-bit
# ---------------------------------------------------------------------------
class TestPaperParity:
    @pytest.mark.parametrize("alias", sorted(COMBO_ALIASES))
    @pytest.mark.parametrize("dataset", GRID_DATASETS)
    def test_alias_bit_identical_to_legacy(self, alias, dataset):
        subimages, plan, camera = rendered_workload(dataset, 8)
        new_run = _run(subimages, alias, plan, camera)
        old_run = _run(subimages, LEGACY_CLASSES[alias](), plan, camera)
        # Pixels: exactly equal, not just within tolerance.
        new_final = assemble_final(new_run.outcomes, *subimages[0].shape)
        old_final = assemble_final(old_run.outcomes, *subimages[0].shape)
        assert _images_equal(new_final, old_final)
        # Wire accounting: every byte, message and counter per stage.
        assert _stage_accounting(new_run) == _stage_accounting(old_run)
        # Modelled time: identical charge sequences give identical clocks.
        assert new_run.stats.t_comp == old_run.stats.t_comp
        assert new_run.stats.t_comm == old_run.stats.t_comm
        assert new_run.stats.mmax_bytes == old_run.stats.mmax_bytes

    @pytest.mark.parametrize("alias", sorted(COMBO_ALIASES))
    def test_alias_matches_recorded_seed_counters(self, alias):
        with open(SEED_COUNTERS, encoding="utf-8") as fh:
            seed = json.load(fh)
        spec = seed["workload"]
        subimages, plan, camera = rendered_workload(
            spec["dataset"], spec["num_ranks"], spec["image_size"],
            tuple(spec["rotation"]), tuple(spec["volume_shape"]),
        )
        run = _run(subimages, alias, plan, camera)
        recorded = seed["methods"][alias]
        assert run.stats.mmax_bytes == recorded["mmax_bytes"]
        assert _stage_accounting(run) == recorded["ranks"]


# ---------------------------------------------------------------------------
# Radix-k: degeneracy and non-trivial factorizations
# ---------------------------------------------------------------------------
class TestRadixK:
    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_all_twos_equals_binary_swap_exactly(self, num_ranks):
        import math

        subimages, plan, camera = rendered_workload("engine_low", num_ranks)
        radix = (2,) * int(math.log2(num_ranks))
        rk_run = _run(subimages, "radix-k:raw", plan, camera, radix=radix)
        bs_run = _run(subimages, "bs", plan, camera)
        rk_final = assemble_final(rk_run.outcomes, *subimages[0].shape)
        bs_final = assemble_final(bs_run.outcomes, *subimages[0].shape)
        assert _images_equal(rk_final, bs_final)
        assert _stage_accounting(rk_run) == _stage_accounting(bs_run)
        assert rk_run.stats.t_comp == bs_run.stats.t_comp
        assert rk_run.stats.t_comm == bs_run.stats.t_comm

    @pytest.mark.parametrize("radix", [(4, 4), (8, 2), (16,), (2, 8)])
    def test_nontrivial_radix_p16(self, radix):
        from conftest import reference_image

        subimages, plan, camera = rendered_workload("engine_low", 16)
        reference = reference_image("engine_low", 16)
        run = _run(subimages, "radix-k:rect-rle", plan, camera, radix=radix)
        final = assemble_final(run.outcomes, *subimages[0].shape)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, *subimages[0].shape)
        # Fewer stages than binary swap: log over the factors, not log2 P.
        stage_sets = {
            idx
            for rank_stats in run.stats.rank_stats
            for idx in rank_stats.stages
            if idx >= 0
        }
        assert stage_sets == set(range(len(radix)))

    def test_radix_timeline_on_sim_backend(self):
        from repro.pipeline.config import RunConfig
        from repro.pipeline.system import SortLastSystem

        cfg = RunConfig(
            dataset="engine_low", image_size=48, num_ranks=16,
            method="radix-k:rect-rle", method_options={"radix": (4, 4)},
            volume_shape=(32, 32, 16),
        )
        result = SortLastSystem(cfg).run(backend="sim", trace=True)
        doc = result.timeline.to_dict()
        assert doc["meta"]["method"] == "radix-k:rect-rle"
        reference = result.reference_image()
        assert np.allclose(result.final_image.intensity, reference.intensity)

    def test_radix_on_mp_backend(self):
        from repro.pipeline.config import RunConfig
        from repro.pipeline.system import SortLastSystem

        cfg = RunConfig(
            dataset="engine_low", image_size=32, num_ranks=4,
            method="radix-k:raw", method_options={"radix": (4,)},
            volume_shape=(32, 32, 16), comm_timeout=10.0,
        )
        mp_result = SortLastSystem(cfg).run(backend="mp")
        sim_result = SortLastSystem(cfg).run(backend="sim")
        assert _images_equal(mp_result.final_image, sim_result.final_image)
