"""Run configuration for the sort-last system and experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..cluster.model import PRESETS, SP2, MachineModel, Network, make_network
from ..errors import ConfigurationError
from ..volume.datasets import DATASETS

__all__ = ["RunConfig"]


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to execute one sort-last run.

    Attributes
    ----------
    dataset:
        Name from :data:`repro.volume.datasets.DATASETS`.
    image_size:
        Final image side in pixels (square images, as in the paper's
        384x384 / 768x768 experiments).
    num_ranks:
        Simulated processor count.  Powers of two run plain binary swap;
        other counts use the folding extension (extra ranks pre-merge
        into buddies before the swap).
    method:
        Compositing method: a registry name (``"bsbrc"``) or a
        ``"<schedule>:<codec>"`` combo (``"radix-k:rect-rle"``).
    machine:
        Machine model instance or preset name.
    rot_x / rot_y / rot_z:
        Viewpoint rotation in degrees (paper §3.2's rotation study).
    volume_shape:
        Optional override of the dataset's default voxel shape (used by
        tests to shrink workloads).
    balance_render_load:
        When true, bisection planes fall at the visible-voxel weighted
        median instead of the midpoint, equalising render work.
    method_options:
        Extra keyword options for the compositor factory (e.g.
        ``{"section": 64}`` for BSLC ablations).
    backend:
        Execution substrate for :class:`~repro.pipeline.system.SortLastSystem`:
        ``"sim"`` (discrete-event simulator, modelled time), ``"mp"``
        (real OS processes, wall clock) or ``"mpi"`` (real MPI job).
    """

    dataset: str = "engine_low"
    image_size: int = 384
    num_ranks: int = 8
    method: str = "bsbrc"
    machine: MachineModel = SP2
    rot_x: float = 20.0
    rot_y: float = 30.0
    rot_z: float = 0.0
    volume_shape: tuple[int, int, int] | None = None
    step: float = 1.0
    #: Weighted-median partitioning: balance visible-voxel render load
    #: across ranks (the paper's future-work load-balancing scheme).
    balance_render_load: bool = False
    #: Rendering algorithm: "raycast" (paper's evaluation) or "splat"
    #: (Westover splatting, the paper's future-work renderer).
    renderer: str = "raycast"
    method_options: dict[str, Any] = field(default_factory=dict)
    #: Execution backend: "sim" | "mp" | "mpi" (see repro.cluster.backend).
    backend: str = "sim"
    #: Per-receive blocking timeout (seconds) on real transports before a
    #: rank declares deadlock; ``None`` uses the backend default.  The
    #: simulator detects deadlock structurally and ignores this.
    comm_timeout: float | None = None
    #: Recovery policy on rank failure: one of
    #: :data:`repro.cluster.recovery.RECOVERY_POLICIES`
    #: ("abort" < "degrade" < "respawn" < "checkpoint-resume"); stronger
    #: policies fall back down the lattice when their mechanism does not
    #: apply (see DESIGN.md §5f).
    recovery: str = "degrade"
    #: Total worker restarts the mp supervisor may spend per run (only
    #: meaningful under "respawn"/"checkpoint-resume").
    respawn_budget: int = 2
    #: Worker liveness-stamp spacing in seconds on the mp backend;
    #: ``None`` uses the backend default, ``0`` disables heartbeats.
    heartbeat_interval: float | None = None
    #: Interconnect topology for the simulator: "flat" (the paper's
    #: contention-free link, default) or a spec string understood by
    #: :func:`repro.cluster.model.make_network` such as
    #: ``"fat-tree:radix=8"`` or ``"torus:dims=32x32"``.
    topology: str = "flat"
    #: Shared-link capacity override (bandwidth as a multiple of the base
    #: per-byte rate; ``inf`` disables contention).  ``None`` keeps the
    #: topology's default; ignored by the flat link.
    link_capacity: float | None = None

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; available: {sorted(DATASETS)}"
            )
        if self.image_size < 2:
            raise ConfigurationError(f"image_size must be >= 2, got {self.image_size}")
        if self.num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be >= 1, got {self.num_ranks}")
        # Non-power-of-two counts are supported through folding (the
        # paper's future-work extension); no restriction here.
        if isinstance(self.machine, str):
            preset = PRESETS.get(self.machine)
            if preset is None:
                raise ConfigurationError(
                    f"unknown machine preset {self.machine!r}; available: {sorted(PRESETS)}"
                )
            object.__setattr__(self, "machine", preset)
        elif not isinstance(self.machine, MachineModel):
            raise ConfigurationError(f"machine must be a MachineModel or preset name")
        from ..compositing.registry import validate_method

        validate_method(self.method)
        if self.step <= 0:
            raise ConfigurationError(f"step must be > 0, got {self.step}")
        if self.renderer not in ("raycast", "splat"):
            raise ConfigurationError(
                f"renderer must be 'raycast' or 'splat', got {self.renderer!r}"
            )
        from ..cluster.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; available: {sorted(BACKENDS)}"
            )
        if self.comm_timeout is not None and self.comm_timeout <= 0:
            raise ConfigurationError(
                f"comm_timeout must be > 0 seconds, got {self.comm_timeout}"
            )
        from ..cluster.recovery import RECOVERY_POLICIES

        if self.recovery not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {self.recovery!r}; "
                f"choose from {RECOVERY_POLICIES}"
            )
        if self.respawn_budget < 0:
            raise ConfigurationError(
                f"respawn_budget must be >= 0, got {self.respawn_budget}"
            )
        if self.heartbeat_interval is not None and self.heartbeat_interval < 0:
            raise ConfigurationError(
                f"heartbeat_interval must be >= 0 seconds, got {self.heartbeat_interval}"
            )
        if self.link_capacity is not None and not (self.link_capacity > 0):
            raise ConfigurationError(
                f"link_capacity must be > 0, got {self.link_capacity!r}"
            )
        # Validate the topology spec eagerly so a typo fails at config
        # time, not deep inside a run.
        self.build_network()

    @property
    def num_pixels(self) -> int:
        return self.image_size * self.image_size

    def build_network(self) -> Network | None:
        """Instantiate the configured topology (``None`` = flat link).

        Returning ``None`` for the flat default keeps the simulator on
        its stateless fast path, which is also the bit-identity contract
        with the pre-topology engine.
        """
        spec = str(self.topology)
        name = spec.partition(":")[0].strip() or "flat"
        if name == "flat":
            if ":" in spec:
                make_network(spec, self.machine)  # validate any options
            return None  # flat has no shared links; link_capacity is moot
        return make_network(spec, self.machine, capacity=self.link_capacity)

    def with_(self, **kwargs) -> "RunConfig":
        """Derive a modified copy (sweep helper)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        return (
            f"{self.dataset}/{self.image_size}px/P{self.num_ranks}/"
            f"{self.method}/{self.machine.name}"
        )
