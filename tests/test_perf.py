"""Tests for the perf counter/timer layer."""

import json
import time

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def _clean_registry():
    perf.reset()
    yield
    perf.reset()


class TestCounters:
    def test_incr_defaults_to_one(self):
        perf.incr("a")
        perf.incr("a")
        assert perf.counter("a") == 2

    def test_incr_amount(self):
        perf.incr("bytes", 100)
        perf.incr("bytes", 23)
        assert perf.counter("bytes") == 123

    def test_unknown_counter_is_zero(self):
        assert perf.counter("never-bumped") == 0

    def test_reset_zeroes(self):
        perf.incr("a", 5)
        perf.reset()
        assert perf.counter("a") == 0
        assert perf.report() == {"counters": {}, "timers": {}}


class TestTimers:
    def test_timer_accumulates_wall_cpu_calls(self):
        for _ in range(3):
            with perf.timer("work"):
                time.sleep(0.002)
        row = perf.report()["timers"]["work"]
        assert row["calls"] == 3
        assert row["wall_s"] >= 3 * 0.002
        assert row["cpu_s"] >= 0.0

    def test_timer_records_on_exception(self):
        with pytest.raises(ValueError):
            with perf.timer("boom"):
                raise ValueError("x")
        assert perf.report()["timers"]["boom"]["calls"] == 1


class TestReport:
    def test_report_is_json_serializable(self):
        perf.incr("rays", 1024)
        with perf.timer("render"):
            pass
        payload = json.dumps(perf.report())
        assert "rays" in payload and "render" in payload

    def test_report_snapshot_is_detached(self):
        perf.incr("a")
        snap = perf.report()
        perf.incr("a")
        assert snap["counters"]["a"] == 1

    def test_format_report_empty(self):
        assert perf.format_report() == "perf counters: (empty)"

    def test_format_report_lists_entries(self):
        perf.incr("rle.codes", 42)
        with perf.timer("render"):
            pass
        text = perf.format_report()
        assert "rle.codes" in text
        assert "42" in text
        assert "render" in text
        assert "calls 1" in text


class TestInstrumentation:
    def test_rle_codecs_count(self):
        import numpy as np

        from repro.compositing.rle import rle_decode_mask, rle_encode_mask

        mask = np.zeros(64, dtype=bool)
        mask[10:20] = True
        codes = rle_encode_mask(mask)
        rle_decode_mask(codes, mask.size)
        counters = perf.report()["counters"]
        assert counters["rle.encode_calls"] == 1
        assert counters["rle.decode_calls"] == 1
        assert counters["rle.codes"] == codes.size

    def test_raycast_counts_samples(self):
        from repro.render.camera import Camera
        from repro.render.raycast import render_full
        from repro.volume.datasets import make_dataset

        volume, transfer = make_dataset("head", (24, 24, 12))
        camera = Camera(
            width=24, height=24, volume_shape=volume.shape, rot_x=20.0, rot_y=30.0
        )
        render_full(volume, transfer, camera)
        counters = perf.report()["counters"]
        assert counters.get("raycast.chunks", 0) > 0
        assert counters.get("raycast.samples", 0) > 0
