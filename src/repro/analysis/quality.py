"""Image-quality metrics for comparing rendered/composited images.

Used to quantify renderer differences (ray casting vs splatting), the
sort-last splatting seam artifact, and any lossy variation a user
introduces.  All metrics operate on the displayable luminance plane or
on raw (intensity, opacity) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..render.image import SubImage

__all__ = ["ImageDelta", "image_delta", "psnr", "mean_abs_error"]


def mean_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute per-pixel difference."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).mean())


def psnr(a: np.ndarray, b: np.ndarray, *, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if peak <= 0:
        raise ValueError(f"peak must be > 0, got {peak}")
    mse = float(np.mean((a - b) ** 2)) if a.size else 0.0
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


@dataclass(frozen=True)
class ImageDelta:
    """Summary of the difference between two subimages."""

    max_abs: float
    mean_abs: float
    psnr_db: float
    differing_pixels: int
    total_pixels: int

    @property
    def differing_fraction(self) -> float:
        return self.differing_pixels / self.total_pixels if self.total_pixels else 0.0

    def __str__(self) -> str:
        psnr_text = "inf" if math.isinf(self.psnr_db) else f"{self.psnr_db:.1f}"
        return (
            f"max|d|={self.max_abs:.3g}  mean|d|={self.mean_abs:.3g}  "
            f"PSNR={psnr_text} dB  differing={self.differing_fraction:.2%}"
        )


def image_delta(a: SubImage, b: SubImage, *, atol: float = 1e-12) -> ImageDelta:
    """Quantify the difference between two subimages (intensity planes)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = np.abs(a.intensity - b.intensity)
    return ImageDelta(
        max_abs=float(diff.max(initial=0.0)),
        mean_abs=float(diff.mean()) if diff.size else 0.0,
        psnr_db=psnr(a.intensity, b.intensity),
        differing_pixels=int((diff > atol).sum()),
        total_pixels=a.num_pixels,
    )
