"""Experiment R1 — §3.2's empty-bounding-rectangle vs viewpoint analysis.

The paper argues that the number of *non-empty* receiving bounding
rectangles a BSBR rank sees across the ``log P`` stages depends on the
viewpoint: about ``log ∛P`` for a normal orthogonal projection, up to
``log ∛(P²)`` when rotating about one axis, and up to ``log P`` when
rotating about two axes.  This experiment counts empty/non-empty
receiving rectangles per rank under the three viewpoint classes and
reports the maxima for comparison with those bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_generic
from ..cluster.model import SP2, MachineModel
from ..cluster.topology import log2_int
from .harness import run_method, workload

__all__ = ["RotationObservation", "run_rotation", "format_rotation"]

#: The three viewpoint classes of §3.2.
VIEWPOINTS = {
    "normal": (0.0, 0.0, 0.0),
    "one-axis": (0.0, 35.0, 0.0),
    "two-axis": (25.0, 35.0, 0.0),
}


@dataclass
class RotationObservation:
    dataset: str
    viewpoint: str
    num_ranks: int
    stages: int
    max_nonempty_recv: int
    mean_nonempty_recv: float
    empty_recv_total: int

    @property
    def paper_bound(self) -> float:
        """The §3.2 upper bound for this viewpoint class (stages)."""
        import math

        p = float(self.num_ranks)
        if self.viewpoint == "normal":
            return math.log2(p ** (1.0 / 3.0))
        if self.viewpoint == "one-axis":
            return math.log2(p ** (2.0 / 3.0))
        return math.log2(p)


def run_rotation(
    *,
    dataset: str = "engine_low",
    rank_counts=(8, 64),
    image_size: int = 384,
    machine: MachineModel = SP2,
    volume_shape=None,
) -> list[RotationObservation]:
    """Count non-empty receiving rects for BSBR under each viewpoint."""
    observations: list[RotationObservation] = []
    for viewpoint, rotation in VIEWPOINTS.items():
        for num_ranks in rank_counts:
            work = workload(
                dataset,
                image_size,
                max_ranks=max(rank_counts),
                rotation=rotation,
                volume_shape=volume_shape,
            )
            _, run = run_method(work, "bsbr", num_ranks, machine=machine)
            stages = log2_int(num_ranks)
            nonempty_counts = []
            empty_total = 0
            for rank_stats in run.stats.rank_stats:
                empty = rank_stats.counter_total("empty_recv_rect")
                empty_total += empty
                nonempty_counts.append(stages - empty)
            observations.append(
                RotationObservation(
                    dataset=dataset,
                    viewpoint=viewpoint,
                    num_ranks=num_ranks,
                    stages=stages,
                    max_nonempty_recv=max(nonempty_counts),
                    mean_nonempty_recv=sum(nonempty_counts) / len(nonempty_counts),
                    empty_recv_total=empty_total,
                )
            )
    return observations


def format_rotation(observations: list[RotationObservation]) -> str:
    rows = [
        (
            o.dataset,
            o.viewpoint,
            o.num_ranks,
            o.stages,
            o.max_nonempty_recv,
            f"{o.mean_nonempty_recv:.2f}",
            f"{o.paper_bound:.2f}",
            o.empty_recv_total,
        )
        for o in observations
    ]
    return (
        "Section 3.2 analysis: non-empty receiving bounding rectangles (BSBR)\n"
        + format_generic(
            [
                "dataset",
                "viewpoint",
                "P",
                "stages",
                "max nonempty",
                "mean nonempty",
                "paper bound",
                "total empty",
            ],
            rows,
        )
    )
