"""Asynchronous tile-routed compositing — the barrier-free peer of
:class:`~repro.compositing.engine.ScheduledCompositor`.

Where the scheduled engine runs ``log2 P`` stage-synchronous exchange
rounds, :class:`TileRoutedCompositor` runs exactly one logical round
with per-tile granularity: every rank encodes its contribution to each
tile of the frame's tile grid (:mod:`repro.compositing.tiles`) and
pushes it straight to the tile's owner through a tag-routed message
pump (:class:`~repro.cluster.collectives.TileRouter`); an owner
completes a tile the moment all ``P - 1`` remote contributions have
arrived — never waiting on unrelated tiles, ranks, or stages.

Determinism: arrival order influences *when* a tile completes, never
*what* it contains — the owner folds contributions by rank index
through the balanced tree of :func:`~repro.compositing.tiles.
fold_tile_planes`, reproducing binary-swap's association bit for bit
(codecs included: skipped pixels are exactly blank, and blank operands
are IEEE identities under *over*).

Accounting: the wire traffic is priced through the same Ts/Tc/To model
as every other method — ``T_bound`` per-tile scans land in the
pre-stage bucket, encode/pack/over charges and per-rank byte/message
counters land in stage 0, identically on the sim and mp substrates.
Each completed tile appends a ``tile_complete`` event (with the
substrate time since the engine started) to the rank's stats, which the
run-timeline layer turns into latency-to-first-pixel metrics.

:meth:`TileRoutedCompositor.run_fused` is the render-overlapped entry:
a callback renders one tile at a time and each finished tile enters the
router while later tiles are still rendering.

Recovery: stage checkpoints do not apply (there are no stage
boundaries to snapshot), so the ``checkpoint-resume`` policy falls back
down the lattice; graceful degradation works unchanged —
:meth:`TileRoutedCompositor.refold_pairs` reports the bisection buddy
pairing, and the rebuilt tile map over the survivor count re-folds a
lost rank's owned tiles onto the survivors deterministically.
"""

from __future__ import annotations

import numpy as np

from ..cluster.collectives import TileRouter
from ..cluster.protocol import BaseRankContext
from ..cluster.stats import PRE_STAGE
from ..errors import ConfigurationError
from ..render.image import SubImage
from ..types import Rect
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor
from .codec import PixelCodec
from .schedule import RectPart
from .tiles import TileMap, build_tile_map, densify_contribution, fold_tile_planes

__all__ = ["TileRoutedCompositor", "DEFAULT_TILE"]

#: Default tile edge length (Usher et al. use 64; 32 keeps small frames
#: multi-tile so the asynchrony is visible at paper-scale image sizes).
DEFAULT_TILE = 32


def _contribution_pixels(contrib, tile_rect: Rect) -> int:
    """Pixels a decoded contribution charges under *over* — the count the
    codec's ``composite`` would report on the scheduled engine: listed
    positions for run-length payloads, the carried (sub-)rect's area for
    dense ones."""
    if contrib.positions is not None:
        return int(contrib.positions.size)
    if contrib.rect is not None:
        return contrib.rect.area
    return tile_rect.area


class TileRoutedCompositor(Compositor):
    """Composite by routing per-tile contributions to tile owners."""

    def __init__(
        self,
        codec: PixelCodec,
        *,
        tile: int = DEFAULT_TILE,
        name: str | None = None,
        charge_pack: bool = True,
    ):
        if "rect" not in codec.supports:
            raise ConfigurationError(
                f"codec {codec.name!r} cannot carry rect-shaped tiles "
                f"(codec supports: {sorted(codec.supports)})"
            )
        if int(tile) < 1:
            raise ConfigurationError(f"tile size must be >= 1, got {tile}")
        self.codec = codec
        self.tile = int(tile)
        self.name = name or f"tile-routed:{codec.name}"
        self.charge_pack = charge_pack

    def refold_pairs(self, size: int) -> list[tuple[int, int]]:
        """Fold pairing for graceful degradation (bisection buddies).

        The tile grid has no exchange structure of its own, so a lost
        rank folds onto its spatial-bisection buddy; the rebuilt tile
        map over the survivor count then reassigns the lost rank's
        owned tiles deterministically.
        """
        return [(2 * i, 2 * i + 1) for i in range(size // 2)]

    async def run(
        self,
        ctx: BaseRankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        self.check_plan(ctx, plan)
        tile_map = build_tile_map(image.full_rect(), self.tile, ctx.size)
        start = ctx.now()
        states: dict[int, object] = {}
        if self.codec.needs_bound_scan:
            ctx.begin_stage(PRE_STAGE)
            for tile_id in range(tile_map.num_tiles):
                if tile_map.owner(tile_id) == ctx.rank:
                    continue
                state = self.codec.make_state(image)
                await self.codec.scan_region(
                    ctx, image, state, tile_map.rect(tile_id)
                )
                states[tile_id] = state
        ctx.begin_stage(0)
        router = TileRouter(ctx, tile_map.owners)
        await router.post_receives(tile_map.owned(ctx.rank))
        for tile_id in range(tile_map.num_tiles):
            if tile_map.owner(tile_id) == ctx.rank:
                continue
            await self._encode_and_push(
                ctx, router, image, tile_map, tile_id, states.get(tile_id)
            )
        outcome = await self._complete_owned(
            ctx, router, image, plan, view_dir, tile_map, start
        )
        await router.flush()
        return outcome

    async def run_fused(
        self,
        ctx: BaseRankContext,
        height: int,
        width: int,
        plan: PartitionPlan,
        view_dir: np.ndarray,
        render_tile,
    ) -> tuple[SubImage, CompositeOutcome]:
        """Render-overlapped run: tiles enter the router as they render.

        ``render_tile(rect)`` returns a full-frame :class:`SubImage`
        that is final inside ``rect`` (e.g. a clipped ray cast).  Tiles
        render in ascending id; each one is pushed to its owner before
        the next starts rendering, so on real substrates communication
        overlaps the remaining rendering.  Returns ``(subimage,
        outcome)`` where ``subimage`` is the pristine assembled render
        (bit-identical to an unfused full render — rays are per-pixel
        independent).

        Fused accounting books everything to stage 0 (render charges no
        model time, matching the unfused render phase; the per-tile
        bound scans cannot precede a render that happens per tile).
        """
        self.check_plan(ctx, plan)
        frame = Rect.full(height, width)
        tile_map = build_tile_map(frame, self.tile, ctx.size)
        start = ctx.now()
        image = SubImage.blank(height, width)
        ctx.begin_stage(0)
        router = TileRouter(ctx, tile_map.owners)
        await router.post_receives(tile_map.owned(ctx.rank))
        for tile_id in range(tile_map.num_tiles):
            rect = tile_map.rect(tile_id)
            rendered = render_tile(rect)
            rows, cols = rect.slices()
            image.intensity[rows, cols] = rendered.intensity[rows, cols]
            image.opacity[rows, cols] = rendered.opacity[rows, cols]
            if tile_map.owner(tile_id) == ctx.rank:
                continue
            state = None
            if self.codec.needs_bound_scan:
                state = self.codec.make_state(image)
                await self.codec.scan_region(ctx, image, state, rect)
            await self._encode_and_push(ctx, router, image, tile_map, tile_id, state)
        subimage = image.copy()
        outcome = await self._complete_owned(
            ctx, router, image, plan, view_dir, tile_map, start
        )
        await router.flush()
        return subimage, outcome

    # ---- internals ---------------------------------------------------------
    async def _encode_and_push(
        self,
        ctx: BaseRankContext,
        router: TileRouter,
        image: SubImage,
        tile_map: TileMap,
        tile_id: int,
        state,
    ) -> None:
        part = RectPart(tile_map.rect(tile_id))
        msg, meta = self.codec.encode(image, part, state)
        await self.codec.charge_encode(ctx, part, meta)
        if self.charge_pack and msg.buffer:
            await ctx.charge_pack(len(msg.buffer))
        await router.push(tile_id, msg.buffer, msg.accounted_bytes)

    async def _complete_owned(
        self,
        ctx: BaseRankContext,
        router: TileRouter,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
        tile_map: TileMap,
        start: float,
    ) -> CompositeOutcome:
        remote = [r for r in range(ctx.size) if r != ctx.rank]
        for tile_id in tile_map.owned(ctx.rank):
            rect = tile_map.rect(tile_id)
            part = RectPart(rect)
            raws = await router.collect(tile_id)
            rows, cols = rect.slices()
            planes: list = [None] * ctx.size
            planes[ctx.rank] = (
                image.intensity[rows, cols].copy(),
                image.opacity[rows, cols].copy(),
            )
            charged = 0
            for src, raw in zip(remote, raws):
                # The tile rect doubles as the decode metadata: tile
                # routing has no symmetric local send for this message,
                # so sender-side notes (a_send) record the addressed
                # tile's area — deterministic on every substrate.
                contrib = self.codec.decode(ctx, raw, part, rect, 0)
                planes[src] = densify_contribution(contrib, rect)
                charged += _contribution_pixels(contrib, rect)
            folded_i, folded_a, _ = fold_tile_planes(planes, plan, view_dir)
            image.intensity[rows, cols] = folded_i
            image.opacity[rows, cols] = folded_a
            # Charge T_over for the pixels each contribution actually
            # carries — the same convention as the codec's ``composite``
            # on the scheduled engine (the dense tree fold is just the
            # deterministic way to *evaluate* the sparse composite; a
            # blank operand is an identity a real implementation skips).
            if charged:
                await ctx.charge_over(charged)
            ctx.note("tile_complete")
            elapsed = ctx.now() - start
            ctx.stats.events.append(
                {
                    "event": "tile_complete",
                    "rank": ctx.rank,
                    "tile": tile_id,
                    "pixels": rect.area,
                    "t": elapsed,
                }
            )
            if ctx.progress is not None:
                # Stream the tile's final pixels the moment they exist
                # (tile-routed tiles never change after completion).
                # Copies only; no charges, so accounting is unchanged.
                ctx.progress.emit_tile(
                    rank=ctx.rank,
                    tile=tile_id,
                    rect=rect,
                    intensity=folded_i,
                    opacity=folded_a,
                    frame_pixels=image.num_pixels,
                    t=elapsed,
                )
        return CompositeOutcome(
            image=image,
            owned_indices=tile_map.owned_flat_indices(ctx.rank),
            producer=self.name,
        )
