"""Bounded on-disk render cache: LRU eviction for ``REPRO_CACHE_DIR``.

The render cache (per-rank subimages from :mod:`repro.pipeline.phases`
and whole rendered workloads from :mod:`repro.experiments.harness`) is
append-only by construction: every distinct (dataset, viewpoint, rank
count, extent) writes a new ``.npz``.  A one-shot CLI run never notices,
but a long-lived render service serving many camera paths would grow
the directory without bound.  This module adds the missing half of the
cache contract:

* ``REPRO_CACHE_MAX_BYTES`` — optional size cap for the cache
  directory.  Unset/empty/non-positive means unbounded (the historical
  behaviour).  Suffixes ``k``/``m``/``g`` (binary, case-insensitive)
  are accepted: ``REPRO_CACHE_MAX_BYTES=512m``.
* :func:`enforce_cache_budget` — called after every cache store; while
  the cache entries exceed the cap it deletes the least-recently-used
  ``.npz`` entry (oldest mtime).  Cache *hits* bump the file's mtime
  (:func:`touch`), so recency means "last read", not "first written" —
  true LRU.

Only ``*.npz`` cache entries are considered: checkpoint snapshots
(``ckpt-*.pkl``) and any foreign files sharing the directory are never
touched, and the entry just written is exempt from its own enforcement
pass (evicting the bytes you are about to read would turn a cap smaller
than one entry into a store/evict livelock).

Eviction is best-effort like the rest of the cache: filesystem races
(another process evicting the same file) are swallowed, and the cap is
a high-water mark, not a hard guarantee — concurrent writers can
overshoot transiently.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "CACHE_LIMIT_ENV",
    "cache_budget",
    "parse_size",
    "touch",
    "enforce_cache_budget",
]

#: Environment variable capping the on-disk cache size in bytes.
CACHE_LIMIT_ENV = "REPRO_CACHE_MAX_BYTES"

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> Optional[int]:
    """Parse a byte size like ``"1048576"``, ``"512m"``, or ``"2G"``.

    Returns ``None`` for empty/unparseable/non-positive values — the
    cache treats all three as "no cap" rather than failing a render
    over a malformed knob.
    """
    text = text.strip().lower()
    if not text:
        return None
    factor = 1
    if text[-1] in _SUFFIXES:
        factor = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * factor)
    except ValueError:
        return None
    return value if value > 0 else None


def cache_budget() -> Optional[int]:
    """The configured cache cap in bytes, or ``None`` for unbounded."""
    return parse_size(os.environ.get(CACHE_LIMIT_ENV, ""))


def touch(path: str) -> None:
    """Mark a cache entry as just-used (best-effort mtime bump)."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def _entries(root: str) -> list[tuple[float, int, str]]:
    """``(mtime, size, path)`` for every cache entry under ``root``."""
    rows: list[tuple[float, int, str]] = []
    try:
        names = os.listdir(root)
    except OSError:
        return rows
    for name in names:
        if not name.endswith(".npz"):
            continue  # only cache entries; never checkpoints or foreign files
        path = os.path.join(root, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        rows.append((st.st_mtime, st.st_size, path))
    return rows


def enforce_cache_budget(
    root: str,
    max_bytes: Optional[int] = None,
    *,
    keep: Optional[str] = None,
) -> list[str]:
    """Evict least-recently-used ``.npz`` entries until the cache fits.

    ``max_bytes`` overrides the ``REPRO_CACHE_MAX_BYTES`` environment
    knob (``None`` reads it; no cap means no-op).  ``keep`` names one
    path exempt from eviction — the entry the caller just stored.
    Returns the evicted paths, oldest first.
    """
    budget = cache_budget() if max_bytes is None else max_bytes
    if budget is None or budget <= 0:
        return []
    rows = _entries(root)
    total = sum(size for _, size, _ in rows)
    if total <= budget:
        return []
    keep_abs = os.path.abspath(keep) if keep else None
    evicted: list[str] = []
    # Oldest mtime first; path breaks mtime ties deterministically.
    for mtime, size, path in sorted(rows, key=lambda row: (row[0], row[2])):
        if total <= budget:
            break
        if keep_abs is not None and os.path.abspath(path) == keep_abs:
            continue
        try:
            os.remove(path)
        except OSError:
            continue  # raced with another evictor; its bytes still freed
        total -= size
        evicted.append(path)
    if evicted:
        from . import perf

        perf.incr("cache.evictions", len(evicted))
    return evicted
