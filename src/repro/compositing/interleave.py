"""Interleaved-section pixel distribution — BSLC's static load balancing.

Molnar et al. observed that sort-last sparse merging load-balances poorly
when one processor's half happens to contain most of the non-blank
pixels.  The fix the paper adopts (§3.3, Figure 6) is to exchange *every
other section* of the flattened pixel array instead of one contiguous
half: sections are short runs of consecutive pixels, and alternate
sections go to alternate halves, so any spatially-concentrated foreground
is shared nearly evenly between the pair.

The owned pixel set of a rank is represented as a sorted ``int64`` index
array into the flattened full image.  Splitting is purely positional —
section ``j`` of the *current owned sequence* goes to half ``j % 2`` —
which guarantees that the two partners of a binary-swap pair (who always
own identical sets at stage entry) compute complementary, exhaustive
splits without communication.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompositingError

__all__ = ["split_interleaved", "initial_indices", "DEFAULT_SECTION"]

#: Default section granularity in pixels.  One 384-pixel scanline-ish run
#: keeps RLE coherence while still interleaving finely enough to balance.
DEFAULT_SECTION = 128


def initial_indices(num_pixels: int) -> np.ndarray:
    """Owned-index array of a rank before the first stage (all pixels)."""
    if num_pixels < 0:
        raise CompositingError(f"num_pixels must be >= 0, got {num_pixels}")
    return np.arange(num_pixels, dtype=np.int64)


def split_interleaved(
    indices: np.ndarray, section: int, keep_first: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Split an owned-index array into interleaved kept/sent subsets.

    Parameters
    ----------
    indices:
        Sorted flat pixel indices currently owned (both partners pass the
        same array).
    section:
        Section length in pixels (``>= 1``).  Positions ``p`` with
        ``(p // section) % 2 == 0`` form the *first* subset.
    keep_first:
        Whether this rank keeps the first subset (its partner must pass
        the complementary value).

    Returns ``(kept, sent)``; together they partition ``indices``.
    """
    if section < 1:
        raise CompositingError(f"section must be >= 1, got {section}")
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise CompositingError(f"indices must be 1-D, got shape {indices.shape}")
    pos = np.arange(indices.shape[0], dtype=np.int64)
    first = ((pos // section) % 2) == 0
    if keep_first:
        return indices[first], indices[~first]
    return indices[~first], indices[first]
