"""Folded compositing: run any binary-swap method on non-power-of-two P.

:class:`FoldedCompositor` wraps one of the swap-structured methods
(BS/BSBR/BSLC/BSBRC).  Extra ranks ship their subimage (bounding-rect
packed — blanks outside the rect never travel) to their core buddy and
drop out; core ranks fold the received half in with one *over* and then
run the wrapped method unchanged on the power-of-two core group, seen
through a :class:`_GroupView` that reports the core group's size.

This implements the paper's first future-work item ("improve the
binary-swap compositing method running on any number of processors").

The same machinery powers graceful degradation: when ranks are lost
before compositing, :func:`~repro.volume.folded.refold_survivors` folds
a power-of-two bisection plan onto the survivors, and this compositor
runs the degraded pass unchanged (see ``DESIGN.md`` §5d).
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.stats import PRE_STAGE
from ..errors import CompositingError
from ..render.image import SubImage
from ..types import Rect
from ..volume.folded import FoldedPartition
from .base import CompositeOutcome, Compositor, composite_rect_pixels
from .wire import pack_bsbr, unpack_bsbr

__all__ = ["FoldedCompositor"]

#: Tag for the pre-swap fold messages (outside stage-tag space).
_FOLD_TAG = 1 << 19


class _GroupView:
    """A rank's view restricted to the core communicator.

    A transparent proxy over any rank context (simulator or
    multiprocessing backend): same rank id — core ranks are exactly
    ``0..Q-1`` — but ``size`` reports ``Q`` so the wrapped method's stage
    count and peer validation see the core group only.
    """

    def __init__(self, base, group_size: int):
        self._base = base
        self._group_size = int(group_size)

    def __getattr__(self, name):
        return getattr(self._base, name)

    @property
    def size(self) -> int:
        return self._group_size


class FoldedCompositor(Compositor):
    """Wrap a swap-structured compositor to support any rank count."""

    def __init__(self, inner: Compositor):
        self.inner = inner
        self.name = f"folded-{inner.name}"

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: FoldedPartition,  # type: ignore[override]
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        if not isinstance(plan, FoldedPartition):
            raise CompositingError(
                "FoldedCompositor needs a FoldedPartition "
                "(build one with repro.volume.folded.partition_folded)"
            )
        if plan.num_ranks != ctx.size:
            raise CompositingError(
                f"folded partition is for {plan.num_ranks} ranks but the "
                f"machine has {ctx.size}"
            )
        core = plan.core_ranks
        ctx.begin_stage(PRE_STAGE)

        if plan.is_extra(ctx.rank):
            # Extra rank: ship the bounding rect of the subimage and exit.
            rect = image.bounding_rect()
            await ctx.charge_bound(image.num_pixels)
            msg = pack_bsbr(image.intensity, image.opacity, rect)
            await ctx.charge_pack(len(msg.buffer))
            buddy = plan.buddy_of_extra[ctx.rank]
            await ctx.send(buddy, msg.buffer, nbytes=msg.accounted_bytes, tag=_FOLD_TAG)
            return CompositeOutcome(image=image, owned_rect=Rect.empty())

        extra = plan.extra_of_core.get(ctx.rank)
        if extra is not None:
            raw = await ctx.recv(extra, tag=_FOLD_TAG)
            rect, recv_i, recv_a = unpack_bsbr(raw)
            if not rect.is_empty:
                composite_rect_pixels(
                    image,
                    rect,
                    recv_i,  # type: ignore[arg-type]
                    recv_a,  # type: ignore[arg-type]
                    # The received half is the extra's (high side); local
                    # is in front iff the core's low half occludes it.
                    local_in_front=plan.core_in_front(ctx.rank, view_dir),
                )
                await ctx.charge_over(rect.area)

        if core == 1:
            return CompositeOutcome(image=image, owned_rect=image.full_rect())
        group_ctx = _GroupView(ctx, core)
        return await self.inner.run(group_ctx, image, plan.core_plan, view_dir)
