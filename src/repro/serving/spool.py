"""File-spool front end for the render service (no network required).

The service is a library; this module gives it a process boundary that
works anywhere the test-suite does: a *spool directory*.  Clients drop
job request documents (``repro.serve-job/1``) into ``<spool>/jobs/``;
a serving process claims them (atomic rename into ``<spool>/work/``),
renders them through a shared :class:`~repro.serving.service.
RenderService`, streams every progress event as a
``repro.serve-event/1`` JSON line into ``<spool>/out/<job>.events.jsonl``,
and finishes with ``<spool>/out/<job>.result.json`` plus the final
image planes in ``<spool>/out/<job>.final.npz``.

All writes are atomic (temp file + ``os.replace``), so a concurrent
submitter/poller never observes a half-written document.  The claim
rename makes multiple serving processes on one spool safe: a job is
executed exactly once by whichever server wins the rename.

This is deliberately the plainest possible transport — the CI smoke
test drives a whole multi-session serve cycle with nothing but files.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any, Optional

import numpy as np

from ..cluster.faults import FaultPlan
from ..errors import ConfigurationError
from ..pipeline.config import RunConfig
from ..pipeline.session import RenderJob
from .service import DEFAULT_QOS, QOS_POLICIES, RenderService

__all__ = [
    "JOB_SCHEMA",
    "RESULT_SCHEMA",
    "load_result",
    "read_events",
    "serve",
    "submit_job",
    "wait_for_result",
]

JOB_SCHEMA = "repro.serve-job/1"
RESULT_SCHEMA = "repro.serve-result/1"

_JOBS, _WORK, _OUT = "jobs", "work", "out"


def _ensure_layout(root: str) -> None:
    for sub in (_JOBS, _WORK, _OUT):
        os.makedirs(os.path.join(root, sub), exist_ok=True)


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


# ---- client side ------------------------------------------------------------
def submit_job(
    root: str,
    *,
    session: str = "default",
    qos: str = DEFAULT_QOS,
    deltas: Optional[dict[str, Any]] = None,
    fault_plan: Optional[FaultPlan] = None,
    job_id: Optional[str] = None,
) -> str:
    """Drop one job request into the spool; returns its job id."""
    if qos not in QOS_POLICIES:
        raise ConfigurationError(
            f"unknown QoS class {qos!r}; available: {sorted(QOS_POLICIES)}"
        )
    _ensure_layout(root)
    if job_id is None:
        job_id = f"job-{uuid.uuid4().hex[:12]}"
    doc = {
        "schema": JOB_SCHEMA,
        "job_id": job_id,
        "session": session,
        "qos": qos,
        "deltas": dict(deltas or {}),
        "fault_plan": None if fault_plan is None else fault_plan.to_dict(),
    }
    _atomic_write_text(
        os.path.join(root, _JOBS, f"{job_id}.json"), json.dumps(doc, indent=2)
    )
    return job_id


def load_result(root: str, job_id: str) -> Optional[dict[str, Any]]:
    """The job's ``repro.serve-result/1`` document, or ``None`` if pending."""
    path = os.path.join(root, _OUT, f"{job_id}.result.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def wait_for_result(
    root: str, job_id: str, *, timeout: float = 60.0, poll: float = 0.05
) -> dict[str, Any]:
    """Poll the spool until the job's result document lands."""
    deadline = time.monotonic() + timeout
    while True:
        doc = load_result(root, job_id)
        if doc is not None:
            return doc
        if time.monotonic() >= deadline:
            raise TimeoutError(f"no result for {job_id!r} within {timeout}s")
        time.sleep(poll)


def read_events(root: str, job_id: str) -> list[dict[str, Any]]:
    """The job's streamed serve-event documents, in emission order."""
    path = os.path.join(root, _OUT, f"{job_id}.events.jsonl")
    events: list[dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    except FileNotFoundError:
        pass
    return events


# ---- server side ------------------------------------------------------------
def _claim_next(root: str) -> Optional[str]:
    """Atomically claim the oldest pending job file; returns its path."""
    jobs_dir = os.path.join(root, _JOBS)
    try:
        names = sorted(os.listdir(jobs_dir))
    except OSError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        src = os.path.join(jobs_dir, name)
        dst = os.path.join(root, _WORK, name)
        try:
            os.replace(src, dst)
        except OSError:
            continue  # another server won the claim
        return dst
    return None


def _stream_events(root: str, job_id: str, session: str, ticket) -> None:
    """Spool every progress event as one JSON line (blocks until closed)."""
    path = os.path.join(root, _OUT, f"{job_id}.events.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        for event in ticket.stream():
            fh.write(json.dumps(event.to_dict(job_id=job_id, session=session)))
            fh.write("\n")
            fh.flush()


def _job_writer(root: str, job_id: str, session: str, qos: str, ticket) -> None:
    """Writer thread body: stream events, then the result document.

    Ordering contract for pollers: by the time ``<job>.result.json``
    exists, ``<job>.events.jsonl`` is complete — the event stream only
    ends once the feed is closed, which happens strictly after the run
    finishes (or fails).
    """
    _stream_events(root, job_id, session, ticket)
    _finish_job(root, job_id, session, qos, ticket)


def _finish_job(root: str, job_id: str, session: str, qos: str, ticket) -> None:
    """Write the job's final image and result document."""
    out_dir = os.path.join(root, _OUT)
    doc: dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "job_id": job_id,
        "session": session,
        "qos": qos,
    }
    try:
        result = ticket.result()
    except Exception as err:  # noqa: BLE001 - reported to the client
        doc.update({"ok": False, "error": type(err).__name__, "detail": str(err)})
    else:
        image_path = os.path.join(out_dir, f"{job_id}.final.npz")
        tmp = f"{image_path}.tmp-{os.getpid()}.npz"
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                intensity=result.final_image.intensity,
                opacity=result.final_image.opacity,
            )
        os.replace(tmp, image_path)
        timeline = result.timeline
        doc.update(
            {
                "ok": True,
                "outcome": timeline.meta.get("outcome") if timeline else None,
                "degraded": result.degraded,
                "recovered": result.recovered,
                "failed_ranks": result.failed_ranks,
                "backend": result.backend_name,
                "makespan": timeline.makespan if timeline else None,
                "coverage": ticket.feed.coverage if ticket.feed is not None else None,
                "events": len(ticket.feed.events) if ticket.feed is not None else 0,
                "image": image_path,
                "method": result.config.method,
                "label": result.config.label(),
            }
        )
    _atomic_write_text(
        os.path.join(out_dir, f"{job_id}.result.json"), json.dumps(doc, indent=2)
    )


def serve(
    root: str,
    base_config: RunConfig,
    *,
    max_workers: int = 2,
    max_jobs: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    poll: float = 0.05,
) -> int:
    """Run a serve loop over the spool; returns the number of jobs served.

    Claims pending requests in name order, multiplexes them through one
    :class:`RenderService` (sessions and QoS from each request), and
    exits after ``max_jobs`` jobs or once the spool has been idle — no
    pending or in-flight work — for ``idle_timeout`` seconds.  With
    neither bound the loop serves forever (Ctrl-C to stop).
    """
    _ensure_layout(root)
    served = 0
    pending: list[tuple[str, threading.Thread]] = []
    last_activity = time.monotonic()
    with RenderService(base_config, max_workers=max_workers) as service:
        while True:
            claimed = _claim_next(root)
            if claimed is not None:
                with open(claimed, encoding="utf-8") as fh:
                    request = json.load(fh)
                if request.get("schema") != JOB_SCHEMA:
                    raise ConfigurationError(
                        f"unsupported job schema {request.get('schema')!r} "
                        f"in {claimed!r} (expected {JOB_SCHEMA!r})"
                    )
                job_id = str(request["job_id"])
                session = str(request.get("session", "default"))
                qos = str(request.get("qos", DEFAULT_QOS))
                plan_doc = request.get("fault_plan")
                job = RenderJob(
                    deltas=dict(request.get("deltas") or {}),
                    fault_plan=(
                        None if plan_doc is None else FaultPlan.from_dict(plan_doc)
                    ),
                    label=job_id,
                )
                service.open_session(session, qos=qos)
                ticket = service.submit(session, job)
                writer = threading.Thread(
                    target=_job_writer,
                    args=(root, job_id, session, qos, ticket),
                    name=f"spool-writer-{job_id}",
                    daemon=True,
                )
                writer.start()
                pending.append((job_id, writer))
                served += 1
                last_activity = time.monotonic()
                if max_jobs is not None and served >= max_jobs:
                    break
                continue  # drain the queue before sleeping
            if service.pool.jobs_active > 0:
                last_activity = time.monotonic()
            elif (
                idle_timeout is not None
                and time.monotonic() - last_activity >= idle_timeout
            ):
                break
            time.sleep(poll)
    # Service shutdown drained the pool; join the writers so every
    # events.jsonl + result.json pair is complete before we return.
    for _, writer in pending:
        writer.join(timeout=30.0)
    return served
