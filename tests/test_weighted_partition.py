"""Tests for weighted-median (render-load balanced) partitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem
from repro.volume.datasets import make_dataset
from repro.volume.partition import (
    depth_order,
    recursive_bisect,
    render_load_weights,
)


def visible_loads(plan, volume, transfer):
    loads = []
    for rank in range(plan.num_ranks):
        sx, sy, sz = plan.extent(rank).slices()
        loads.append(float((transfer.opacity(volume.data[sx, sy, sz]) > 0).sum()))
    return loads


class TestWeightedSplit:
    def test_uniform_weights_equal_midpoint(self):
        shape = (32, 32, 16)
        uniform = np.ones(shape)
        weighted = recursive_bisect(shape, 8, weights=uniform)
        plain = recursive_bisect(shape, 8)
        assert weighted.extents == plain.extents

    def test_weights_shape_checked(self):
        with pytest.raises(PartitionError):
            recursive_bisect((16, 16, 16), 2, weights=np.ones((8, 8, 8)))

    def test_negative_weights_rejected(self):
        weights = np.ones((16, 16, 16))
        weights[0, 0, 0] = -1.0
        with pytest.raises(PartitionError):
            recursive_bisect((16, 16, 16), 2, weights=weights)

    def test_zero_weights_fall_back_to_midpoint(self):
        shape = (16, 16, 16)
        plan = recursive_bisect(shape, 2, weights=np.zeros(shape))
        assert plan.extents == recursive_bisect(shape, 2).extents

    def test_concentrated_mass_shifts_plane(self):
        shape = (32, 8, 8)
        weights = np.zeros(shape)
        weights[:8] = 1.0  # all mass in the first quarter along x
        plan = recursive_bisect(shape, 2, weights=weights)
        low, high = plan.extent(0), plan.extent(1)
        # The plane moves toward the mass: low block much thinner than 16.
        assert low.shape[0] < 10
        assert low.shape[0] + high.shape[0] == 32

    def test_both_halves_nonempty_even_for_edge_mass(self):
        shape = (16, 8, 8)
        weights = np.zeros(shape)
        weights[0] = 100.0  # everything in the first slab
        plan = recursive_bisect(shape, 2, weights=weights)
        assert plan.extent(0).num_voxels > 0
        assert plan.extent(1).num_voxels > 0

    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_still_an_exact_partition(self, num_ranks):
        volume, transfer = make_dataset("engine_high", (32, 32, 16))
        weights = render_load_weights(volume.data, transfer)
        plan = recursive_bisect(volume.shape, num_ranks, weights=weights)
        counts = np.zeros(volume.shape, dtype=np.int32)
        for rank in range(num_ranks):
            sx, sy, sz = plan.extent(rank).slices()
            counts[sx, sy, sz] += 1
        assert (counts == 1).all()

    def test_depth_order_still_valid(self):
        volume, transfer = make_dataset("engine_high", (32, 32, 16))
        weights = render_load_weights(volume.data, transfer)
        plan = recursive_bisect(volume.shape, 8, weights=weights)
        order = depth_order(plan, np.array([0.3, -0.5, 0.8]))
        assert sorted(order) == list(range(8))


class TestLoadBalanceEffect:
    def test_reduces_imbalance_on_sparse_data(self):
        volume, transfer = make_dataset("engine_high", (64, 64, 28))
        weights = render_load_weights(volume.data, transfer)
        plain = recursive_bisect(volume.shape, 8)
        balanced = recursive_bisect(volume.shape, 8, weights=weights)
        loads_plain = visible_loads(plain, volume, transfer)
        loads_balanced = visible_loads(balanced, volume, transfer)

        def imbalance(loads):
            return max(loads) / max(1.0, min(loads))

        assert imbalance(loads_balanced) < imbalance(loads_plain) / 2

    def test_weights_helper_positive(self):
        volume, transfer = make_dataset("cube", (24, 24, 12))
        weights = render_load_weights(volume.data, transfer)
        assert (weights > 0).all()  # epsilon keeps empty space splittable
        assert weights.shape == volume.shape


class TestEndToEndBalanced:
    @pytest.mark.parametrize("method", ["bs", "bsbrc", "bslc"])
    def test_pipeline_correct_with_balancing(self, method):
        cfg = RunConfig(
            dataset="engine_high",
            method=method,
            num_ranks=8,
            image_size=48,
            volume_shape=(32, 32, 16),
            balance_render_load=True,
        )
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9

    def test_balancing_changes_partition(self):
        base = RunConfig(
            dataset="engine_high",
            num_ranks=8,
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        plain = SortLastSystem(base).run()
        balanced = SortLastSystem(base.with_(balance_render_load=True)).run()
        assert plain.plan.extents != balanced.plan.extents
        # Same final image regardless of where the planes fall.
        assert plain.final_image.max_abs_diff(balanced.final_image) < 1e-9
