"""Pixel codecs — the *what crosses the wire* plane of compositing.

A :class:`PixelCodec` turns an image part (rect or interleaved index
set, see :mod:`repro.compositing.schedule`) into a wire message and
back, and charges the paper's cost model for the work the encoding
implies: ``encode`` packs, :meth:`PixelCodec.charge_encode` prices the
RLE scan (``T_encode``), :meth:`PixelCodec.scan` prices the initial
bounding-rectangle pass (``T_bound``), and :meth:`PixelCodec.composite`
returns the pixel count the engine charges to ``T_over``.  The byte
layouts and charge sequences replicate the four paper methods exactly,
so routing BS/BSBR/BSLC/BSBRC through the generic engine leaves every
per-stage byte, message and counter value bit-for-bit unchanged.

Implementations: :class:`RawCodec` (BS), :class:`BoundingRectCodec`
(BSBR), :class:`RunLengthCodec` (BSLC's sequence RLE, also usable over
rect parts), :class:`RectRLECodec` (BSBRC).  Stateless codecs are
shared across ranks; per-run mutable state (the tracked local bounding
rectangle) lives in the object :meth:`PixelCodec.make_state` returns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..cluster.protocol import BaseRankContext
from ..errors import CompositingError
from ..render.image import SubImage
from ..types import Rect
from .base import composite_rect_pixels
from .over import over
from .schedule import IndexPart, RectPart
from .wire import (
    WireMessage,
    pack_bs,
    pack_bsbr,
    pack_bsbrc,
    pack_bslc,
    pack_raw_seq,
    pack_rle_rect,
    unpack_bs,
    unpack_bsbr,
    unpack_bsbrc,
    unpack_bslc,
    unpack_raw_seq,
    unpack_rle_rect,
)

__all__ = [
    "Contribution",
    "PixelCodec",
    "RawCodec",
    "BoundingRectCodec",
    "RunLengthCodec",
    "RectRLECodec",
    "composite_sparse_rect",
    "composite_sequence_pixels",
]


@dataclass(eq=False)
class Contribution:
    """Decoded pixels received from one peer.

    ``rect`` carries the geometry for rect payloads.  ``positions`` are
    the non-blank offsets (row-major inside ``rect``, or into the kept
    sequence for index parts); ``None`` means the values are dense over
    the whole part.
    """

    rect: Rect | None = None
    positions: np.ndarray | None = None
    values_i: np.ndarray | None = None
    values_a: np.ndarray | None = None


def composite_sparse_rect(
    image: SubImage,
    rect: Rect,
    positions: np.ndarray,
    recv_i: np.ndarray,
    recv_a: np.ndarray,
    *,
    local_in_front: bool,
) -> None:
    """Composite non-blank pixels at row-major ``positions`` of ``rect``."""
    rows = rect.y0 + positions // rect.width
    cols = rect.x0 + positions % rect.width
    loc_i = image.intensity[rows, cols]
    loc_a = image.opacity[rows, cols]
    if local_in_front:
        out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
    else:
        out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
    image.intensity[rows, cols] = out_i
    image.opacity[rows, cols] = out_a


def composite_sequence_pixels(
    image: SubImage,
    indices: np.ndarray,
    positions: np.ndarray | None,
    recv_i: np.ndarray,
    recv_a: np.ndarray,
    *,
    local_in_front: bool,
) -> int:
    """Composite received sequence pixels at ``indices[positions]``.

    ``positions=None`` composites the whole sequence.  Returns the pixel
    count folded (0 when the received subset is empty).
    """
    targets = indices if positions is None else indices[positions]
    if targets.size == 0:
        return 0
    flat_i = image.intensity.ravel()
    flat_a = image.opacity.ravel()
    loc_i = flat_i[targets]
    loc_a = flat_a[targets]
    if local_in_front:
        out_i, out_a = over(loc_i, loc_a, recv_i, recv_a)
    else:
        out_i, out_a = over(recv_i, recv_a, loc_i, loc_a)
    flat_i[targets] = out_i
    flat_a[targets] = out_a
    return int(targets.size)


class PixelCodec(abc.ABC):
    """Serialize image parts and charge the matching model costs."""

    #: Registry name, e.g. ``"rect-rle"``.
    name: str = "abstract"
    #: One-line description for the method catalog.
    description: str = ""
    #: Part kinds this codec can carry.
    supports: frozenset[str] = frozenset({"rect", "index"})
    #: Whether the codec opens with a full-image bounding-rect scan
    #: (``T_bound``, charged to the pre-stage bucket).
    needs_bound_scan: bool = False

    def make_state(self, image: SubImage) -> Any:
        """Per-run mutable codec state (``None`` for stateless codecs)."""
        return None

    async def scan(self, ctx: BaseRankContext, image: SubImage, state: Any) -> None:
        """Pre-stage scan; only called when ``needs_bound_scan``."""

    async def scan_region(
        self, ctx: BaseRankContext, image: SubImage, state: Any, rect: Rect
    ) -> None:
        """Regional variant of :meth:`scan` for tile-grained engines.

        Only called when ``needs_bound_scan``; charges ``T_bound`` for
        the region's pixels.  Summed over a partition of the frame the
        total charge equals one whole-image :meth:`scan`.
        """

    @abc.abstractmethod
    def encode(
        self, image: SubImage, part: RectPart | IndexPart, state: Any
    ) -> tuple[WireMessage, Any]:
        """Pack ``part``; returns the message plus opaque send metadata."""

    async def charge_encode(
        self, ctx: BaseRankContext, part: RectPart | IndexPart, meta: Any
    ) -> None:
        """Price the encoding scan (no-op for codecs that do not scan)."""

    @abc.abstractmethod
    def decode(
        self,
        ctx: BaseRankContext,
        raw: bytes,
        keep: RectPart | IndexPart,
        meta: Any,
        stage: int,
    ) -> Contribution:
        """Parse a received message; emits the method's stat notes."""

    @abc.abstractmethod
    def composite(
        self,
        image: SubImage,
        keep: RectPart | IndexPart,
        contrib: Contribution,
        local_in_front: bool,
    ) -> int:
        """Fold a contribution into ``image``; returns pixels charged."""

    def update_state(
        self, state: Any, keep: RectPart | IndexPart, contribs: list[Contribution]
    ) -> None:
        """Refresh codec state after a stage completes."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


# --------------------------------------------------------------------------
# raw — every pixel of the part, blanks included (BS)
# --------------------------------------------------------------------------
class RawCodec(PixelCodec):
    """Ship the whole part, blank or not (paper BS, eq. (2))."""

    name = "raw"
    description = "raw pixels, blanks included"

    def encode(self, image, part, state):
        if isinstance(part, RectPart):
            return pack_bs(image.intensity, image.opacity, part.rect), None
        return (
            pack_raw_seq(image.intensity.ravel(), image.opacity.ravel(), part.indices),
            None,
        )

    def decode(self, ctx, raw, keep, meta, stage):
        if isinstance(keep, RectPart):
            recv_i, recv_a = unpack_bs(raw, keep.rect)
            return Contribution(rect=keep.rect, values_i=recv_i, values_a=recv_a)
        recv_i, recv_a = unpack_raw_seq(raw, keep.num_pixels)
        return Contribution(values_i=recv_i, values_a=recv_a)

    def composite(self, image, keep, contrib, local_in_front):
        if isinstance(keep, RectPart):
            composite_rect_pixels(
                image,
                keep.rect,
                contrib.values_i,
                contrib.values_a,
                local_in_front=local_in_front,
            )
            return keep.rect.area
        return composite_sequence_pixels(
            image,
            keep.indices,
            None,
            contrib.values_i,
            contrib.values_a,
            local_in_front=local_in_front,
        )


# --------------------------------------------------------------------------
# bounding rect — track and clip the local foreground rect (BSBR)
# --------------------------------------------------------------------------
class _TrackedRectState:
    """The local bounding rectangle a rect codec maintains per run."""

    __slots__ = ("local_rect",)

    def __init__(self) -> None:
        self.local_rect = Rect.empty()


class _TrackedRectCodec(PixelCodec):
    """Shared machinery of the rect-tracking codecs (BSBR / BSBRC).

    The initial full scan finds the local bounding rectangle
    (``T_bound``); each encode clips it to the sending part; after a
    stage the rectangle refreshes as (kept part ∩ local) ∪ received
    rects — the paper's O(1) update, never a rescan.
    """

    supports = frozenset({"rect"})
    needs_bound_scan = True

    def make_state(self, image):
        return _TrackedRectState()

    async def scan(self, ctx, image, state):
        state.local_rect = image.bounding_rect()
        await ctx.charge_bound(image.num_pixels)

    async def scan_region(self, ctx, image, state, rect):
        # Tile-grained scan: the tracked rect covers only this region's
        # foreground, which clips *tighter* than (whole-image rect ∩
        # region) — fewer bytes ship, and the per-region charges sum to
        # exactly one whole-image scan.
        state.local_rect = image.bounding_rect(rect)
        await ctx.charge_bound(rect.area)

    def update_state(self, state, keep, contribs):
        rect = state.local_rect.intersect(keep.rect)
        for contrib in contribs:
            rect = rect.union(contrib.rect)
        state.local_rect = rect

    def _check_inside(self, recv_rect: Rect, keep: RectPart, stage: int) -> None:
        if not keep.rect.contains(recv_rect):
            raise CompositingError(
                f"stage {stage}: received rect {recv_rect} outside kept half {keep.rect}"
            )


class BoundingRectCodec(_TrackedRectCodec):
    """Ship only the part's foreground bounding rectangle (BSBR, eq. (4))."""

    name = "rect"
    description = "bounding rectangle of the non-blank pixels"

    def encode(self, image, part, state):
        send_rect = state.local_rect.intersect(part.rect)
        return pack_bsbr(image.intensity, image.opacity, send_rect), send_rect

    def decode(self, ctx, raw, keep, meta, stage):
        recv_rect, recv_i, recv_a = unpack_bsbr(raw)
        self._check_inside(recv_rect, keep, stage)
        ctx.note("a_rec", recv_rect.area)
        ctx.note("a_send", meta.area)
        if recv_rect.is_empty:
            ctx.note("empty_recv_rect")
        if meta.is_empty:
            ctx.note("empty_send_rect")
        return Contribution(rect=recv_rect, values_i=recv_i, values_a=recv_a)

    def composite(self, image, keep, contrib, local_in_front):
        if contrib.rect.is_empty:
            return 0
        composite_rect_pixels(
            image,
            contrib.rect,
            contrib.values_i,
            contrib.values_a,
            local_in_front=local_in_front,
        )
        return contrib.rect.area


class RectRLECodec(_TrackedRectCodec):
    """Bounding rect + RLE of its blank mask (BSBRC, eq. (8))."""

    name = "rect-rle"
    description = "bounding rectangle with RLE of its blank mask"

    def encode(self, image, part, state):
        send_rect = state.local_rect.intersect(part.rect)
        return pack_bsbrc(image.intensity, image.opacity, send_rect), send_rect

    async def charge_encode(self, ctx, part, meta):
        # The RLE scan touches every pixel of the (clipped) sending rect.
        await ctx.charge_encode(meta.area)

    def decode(self, ctx, raw, keep, meta, stage):
        recv_rect, positions, recv_i, recv_a = unpack_bsbrc(raw)
        self._check_inside(recv_rect, keep, stage)
        ctx.note("a_rec", recv_rect.area)
        ctx.note("a_send", meta.area)
        ctx.note("a_opaque", 0 if positions is None else positions.size)
        if not recv_rect.is_empty:
            ctx.note("r_code", int.from_bytes(raw[8:12], "little"))
        else:
            ctx.note("empty_recv_rect")
        if meta.is_empty:
            ctx.note("empty_send_rect")
        return Contribution(
            rect=recv_rect, positions=positions, values_i=recv_i, values_a=recv_a
        )

    def composite(self, image, keep, contrib, local_in_front):
        if contrib.rect.is_empty or contrib.positions is None:
            return 0
        if not contrib.positions.size:
            return 0
        composite_sparse_rect(
            image,
            contrib.rect,
            contrib.positions,
            contrib.values_i,
            contrib.values_a,
            local_in_front=local_in_front,
        )
        return int(contrib.positions.size)


# --------------------------------------------------------------------------
# run-length — RLE over the whole part, no rect tracking (BSLC)
# --------------------------------------------------------------------------
class RunLengthCodec(PixelCodec):
    """RLE the part's blank mask; only non-blank pixels ship (eq. (6)).

    Over index parts this is exactly BSLC's sequence codec.  Over rect
    parts the same layout applies to the rect's row-major pixels (the
    receiver knows the region, so no rect info ships) — the encoder
    scans the *whole* part each stage, which is the method's documented
    ``T_encode`` weakness.
    """

    name = "rle"
    description = "run-length encoded blank mask, non-blank pixels only"

    def encode(self, image, part, state):
        if isinstance(part, RectPart):
            return pack_rle_rect(image.intensity, image.opacity, part.rect), None
        return (
            pack_bslc(image.intensity.ravel(), image.opacity.ravel(), part.indices),
            None,
        )

    async def charge_encode(self, ctx, part, meta):
        # The RLE scan touches every pixel of the sending part.
        await ctx.charge_encode(part.num_pixels)

    def decode(self, ctx, raw, keep, meta, stage):
        if isinstance(keep, RectPart):
            positions, recv_i, recv_a = unpack_rle_rect(raw, keep.rect)
            rect: Rect | None = keep.rect
        else:
            positions, recv_i, recv_a = unpack_bslc(raw, keep.num_pixels)
            rect = None
        ctx.note("r_code", int.from_bytes(raw[:4], "little"))
        ctx.note("a_opaque", positions.size)
        return Contribution(
            rect=rect, positions=positions, values_i=recv_i, values_a=recv_a
        )

    def composite(self, image, keep, contrib, local_in_front):
        if isinstance(keep, RectPart):
            if not contrib.positions.size:
                return 0
            composite_sparse_rect(
                image,
                keep.rect,
                contrib.positions,
                contrib.values_i,
                contrib.values_a,
                local_in_front=local_in_front,
            )
            return int(contrib.positions.size)
        return composite_sequence_pixels(
            image,
            keep.indices,
            contrib.positions,
            contrib.values_i,
            contrib.values_a,
            local_in_front=local_in_front,
        )
