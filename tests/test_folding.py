"""Tests for the non-power-of-two folding extension (paper §5, item 1)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import random_subimages
from repro.cluster.model import IDEALIZED, SP2
from repro.compositing.folding import FoldedCompositor
from repro.compositing.registry import make_compositor
from repro.errors import CompositingError, PartitionError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import (
    SortLastSystem,
    assemble_final,
    run_compositing,
    validate_ownership,
)
from repro.render.camera import Camera
from repro.render.raycast import render_subvolume
from repro.render.reference import composite_sequential
from repro.volume.datasets import make_dataset
from repro.volume.folded import core_count, folded_depth_order, partition_folded
from repro.volume.partition import recursive_bisect

SHAPE = (48, 48, 24)


def rendered_folded(dataset, num_ranks, image_size=64):
    volume, transfer = make_dataset(dataset, SHAPE)
    camera = Camera(
        width=image_size, height=image_size, volume_shape=volume.shape,
        rot_x=25, rot_y=40,
    )
    folded = partition_folded(volume.shape, num_ranks)
    subimages = [
        render_subvolume(volume, transfer, camera, folded.extent(r))
        for r in range(num_ranks)
    ]
    return subimages, folded, camera


class TestCoreCount:
    def test_values(self):
        assert core_count(1) == 1
        assert core_count(2) == 2
        assert core_count(3) == 2
        assert core_count(7) == 4
        assert core_count(8) == 8
        assert core_count(63) == 32

    def test_rejects_zero(self):
        with pytest.raises(PartitionError):
            core_count(0)


class TestFoldedPartition:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 5, 6, 7, 11, 12, 24, 31])
    def test_extents_partition_volume(self, num_ranks):
        folded = partition_folded(SHAPE, num_ranks)
        counts = np.zeros(SHAPE, dtype=np.int32)
        for rank in range(num_ranks):
            sx, sy, sz = folded.extent(rank).slices()
            counts[sx, sy, sz] += 1
        assert (counts == 1).all()

    def test_power_of_two_degenerates(self):
        folded = partition_folded(SHAPE, 8)
        assert folded.num_extras == 0
        plain = recursive_bisect(SHAPE, 8)
        assert folded.extents == plain.extents

    def test_buddy_maps_consistent(self):
        folded = partition_folded(SHAPE, 11)
        assert folded.core_ranks == 8
        assert folded.num_extras == 3
        for extra, core in folded.buddy_of_extra.items():
            assert folded.extra_of_core[core] == extra
            assert folded.is_extra(extra)
            assert not folded.is_extra(core)

    def test_fold_splits_largest_blocks(self):
        """Extras halve the biggest blocks — per-rank load stays balanced."""
        folded = partition_folded(SHAPE, 12)
        sizes = [folded.extent(r).num_voxels for r in range(12)]
        assert max(sizes) <= 2 * min(sizes)

    def test_folded_depth_order_permutation(self):
        folded = partition_folded(SHAPE, 13)
        order = folded_depth_order(folded, np.array([0.3, -0.7, 0.5]))
        assert sorted(order) == list(range(13))

    def test_fold_pair_adjacent_in_order(self):
        folded = partition_folded(SHAPE, 6)
        order = folded_depth_order(folded, np.array([0.3, -0.7, 0.5]))
        pos = {r: i for i, r in enumerate(order)}
        for extra, core in folded.buddy_of_extra.items():
            assert abs(pos[extra] - pos[core]) == 1


class TestFoldedCompositing:
    @pytest.mark.parametrize("num_ranks", [3, 5, 6, 7, 12, 13, 24])
    @pytest.mark.parametrize("method", ["bs", "bsbrc"])
    def test_matches_sequential_reference(self, num_ranks, method):
        subimages, folded, camera = rendered_folded("engine_low", num_ranks)
        reference = composite_sequential(
            subimages, folded_depth_order(folded, camera.view_dir)
        )
        run = run_compositing(subimages, method, folded, camera.view_dir, SP2)
        final = assemble_final(run.outcomes, 64, 64)
        assert final.max_abs_diff(reference) < 1e-9
        validate_ownership(run.outcomes, 64, 64)

    @pytest.mark.parametrize("method", ["bsbr", "bslc"])
    def test_other_methods_p6(self, method):
        subimages, folded, camera = rendered_folded("cube", 6)
        reference = composite_sequential(
            subimages, folded_depth_order(folded, camera.view_dir)
        )
        run = run_compositing(subimages, method, folded, camera.view_dir, SP2)
        final = assemble_final(run.outcomes, 64, 64)
        assert final.max_abs_diff(reference) < 1e-9

    def test_extras_own_nothing(self):
        subimages, folded, camera = rendered_folded("engine_low", 6)
        run = run_compositing(subimages, "bsbrc", folded, camera.view_dir, SP2)
        for extra in folded.buddy_of_extra:
            assert run.outcomes[extra].owned_rect.is_empty

    def test_extras_send_exactly_one_message(self):
        subimages, folded, camera = rendered_folded("engine_low", 6)
        run = run_compositing(subimages, "bsbrc", folded, camera.view_dir, SP2)
        for extra in folded.buddy_of_extra:
            stats = run.stats.rank_stats[extra]
            assert stats.msgs_sent == 1
            assert stats.msgs_recv == 0

    def test_pow2_folded_equals_plain(self):
        """With no extras the wrapper must be byte-identical to the plain
        method, per rank and per stage."""
        subimages, folded, camera = rendered_folded("engine_low", 8)
        plain_plan = recursive_bisect(SHAPE, 8)
        folded_run = run_compositing(subimages, "bsbrc", folded, camera.view_dir, SP2)
        plain_run = run_compositing(subimages, "bsbrc", plain_plan, camera.view_dir, SP2)
        for a, b in zip(folded_run.stats.rank_stats, plain_run.stats.rank_stats):
            assert a.bytes_recv == b.bytes_recv
            assert a.comm_time == pytest.approx(b.comm_time)
        final_a = assemble_final(folded_run.outcomes, 64, 64)
        final_b = assemble_final(plain_run.outcomes, 64, 64)
        assert final_a.max_abs_diff(final_b) == 0.0

    def test_requires_folded_partition(self):
        from repro.errors import RankFailedError

        subimages, _, camera = rendered_folded("engine_low", 4)
        plain = recursive_bisect(SHAPE, 4)
        wrapper = FoldedCompositor(make_compositor("bs"))
        # The mismatch surfaces inside the rank coroutine, wrapped by the
        # simulator's failure reporting.
        with pytest.raises(RankFailedError) as excinfo:
            run_compositing(subimages, wrapper, plain, camera.view_dir, SP2)
        assert isinstance(excinfo.value.original, CompositingError)

    def test_name_reflects_inner(self):
        wrapper = FoldedCompositor(make_compositor("bslc"))
        assert wrapper.name == "folded-bslc"

    @given(
        num_ranks=st.integers(2, 12),
        seed=st.integers(0, 1000),
        density=st.floats(0.0, 0.8),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_images_any_p(self, num_ranks, seed, density):
        rng = np.random.default_rng(seed)
        folded = partition_folded((32, 32, 16), num_ranks)
        images = random_subimages(rng, num_ranks, 24, 24, density)
        view = np.array([0.4, -0.3, 0.85])
        reference = composite_sequential(images, folded_depth_order(folded, view))
        run = run_compositing(images, "bsbrc", folded, view, IDEALIZED)
        final = assemble_final(run.outcomes, 24, 24)
        assert final.max_abs_diff(reference) < 1e-9


class TestEndToEndNonPow2:
    @pytest.mark.parametrize("num_ranks", [3, 6, 12])
    def test_sort_last_system(self, num_ranks):
        cfg = RunConfig(
            dataset="engine_low",
            method="bsbrc",
            num_ranks=num_ranks,
            image_size=48,
            volume_shape=(32, 32, 16),
        )
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9
