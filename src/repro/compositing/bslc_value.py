"""BSLC variant with Ahrens & Painter value-based RLE ("bslcv").

Identical exchange structure to BSLC — interleaved halves, static load
balancing — but the wire compression is value runs instead of the
paper's blank/non-blank mask runs.  This is the comparator the paper's
§3.3 argues against for volume rendering: on floating-point pixels the
value runs degenerate to one run per non-blank pixel (18 bytes each vs
BSLC's 16 + amortized 2-byte mask codes).  Kept in the registry so the
ablation bench can demonstrate the argument on real images.
"""

from __future__ import annotations

import numpy as np

from ..cluster.context import RankContext
from ..cluster.topology import keeps_low_half
from ..errors import CompositingError
from ..render.image import SubImage
from ..volume.partition import PartitionPlan
from .base import CompositeOutcome, Compositor
from .interleave import DEFAULT_SECTION, initial_indices, split_interleaved
from .over import nonblank_mask, over
from .value_rle import pack_value_runs, unpack_value_runs

__all__ = ["BinarySwapValueCompression"]


class BinarySwapValueCompression(Compositor):
    """BSLC exchange structure with value-RLE payload (A&P comparator)."""

    name = "bslcv"

    def __init__(self, *, section: int = DEFAULT_SECTION, charge_pack: bool = True):
        if section < 1:
            raise CompositingError(f"section must be >= 1, got {section}")
        self.section = int(section)
        self.charge_pack = charge_pack

    async def run(
        self,
        ctx: RankContext,
        image: SubImage,
        plan: PartitionPlan,
        view_dir: np.ndarray,
    ) -> CompositeOutcome:
        stages = self.check_plan(ctx, plan)
        flat_i = image.intensity.ravel()
        flat_a = image.opacity.ravel()
        indices = initial_indices(image.num_pixels)

        for stage in range(stages):
            ctx.begin_stage(stage)
            partner = ctx.rank ^ (1 << stage)
            kept, sent = split_interleaved(
                indices, self.section, keeps_low_half(ctx.rank, stage)
            )

            msg = pack_value_runs(flat_i[sent], flat_a[sent])
            await ctx.charge_encode(sent.shape[0])
            if self.charge_pack:
                await ctx.charge_pack(len(msg.buffer))
            raw = await ctx.sendrecv(
                partner, msg.buffer, nbytes=msg.accounted_bytes, tag=stage
            )

            recv_i, recv_a = unpack_value_runs(raw, kept.shape[0])
            ctx.note("value_runs", int.from_bytes(raw[:4], "little"))
            # Blank received pixels are over-identities; composite only
            # the non-blank ones (and charge accordingly).
            mask = nonblank_mask(recv_i, recv_a)
            positions = np.flatnonzero(mask)
            ctx.note("a_opaque", positions.size)
            if positions.size:
                targets = kept[positions]
                loc_i = flat_i[targets]
                loc_a = flat_a[targets]
                if plan.local_in_front(ctx.rank, stage, view_dir):
                    out_i, out_a = over(loc_i, loc_a, recv_i[mask], recv_a[mask])
                else:
                    out_i, out_a = over(recv_i[mask], recv_a[mask], loc_i, loc_a)
                flat_i[targets] = out_i
                flat_a[targets] = out_a
                await ctx.charge_over(positions.size)
            indices = kept
        return CompositeOutcome(image=image, owned_indices=indices)
