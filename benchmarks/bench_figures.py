"""Benchmarks F7-F11 — regenerate the paper's figures and check curves.

Each figure bench times the compositing sweep behind one figure
(BSBR/BSLC/BSBRC over P=2..64 on that figure's dataset at 384x384),
emits the ASCII plot, and asserts the curve relationships the paper
describes in §4 for that figure.
"""

from conftest import PAPER_RANKS, cell, emit
from repro.experiments.figures import FIGURE_DATASETS, format_figure, render_figure7
from repro.experiments.harness import run_grid, workload

_METHODS = ("bsbr", "bslc", "bsbrc")


def figure_rows(dataset):
    return run_grid([dataset], 384, PAPER_RANKS, _METHODS)


def _bench_figure(benchmark, figure):
    dataset = FIGURE_DATASETS[figure]
    workload(dataset, 384, max_ranks=64)  # pre-render
    rows = benchmark.pedantic(lambda: figure_rows(dataset), rounds=1, iterations=1)
    emit(f"figure{figure}", format_figure(figure, rows))
    return rows


def test_bench_figure8_engine_low(benchmark):
    """Figure 8: Engine_low — every T_total(BSBRC) below T_total(BSBR);
    BSLC worst of the three at scale."""
    rows = _bench_figure(benchmark, 8)
    for p in PAPER_RANKS:
        c = cell(rows, "engine_low", p)
        assert c["bsbrc"].t_total <= c["bsbr"].t_total * 1.10, p
        if p >= 8:
            assert c["bslc"].t_total == max(m.t_total for m in c.values()), p


def test_bench_figure9_head(benchmark):
    """Figure 9: Head — BSBR and BSBRC nearly tie (the paper notes BSBR
    can win at mid P by a small margin); BSLC clearly worst."""
    rows = _bench_figure(benchmark, 9)
    for p in PAPER_RANKS:
        c = cell(rows, "head", p)
        ratio = c["bsbrc"].t_total / c["bsbr"].t_total
        assert 0.5 < ratio < 1.15, (p, ratio)
        if p >= 8:
            assert c["bslc"].t_total > c["bsbrc"].t_total, p


def test_bench_figure10_engine_high(benchmark):
    """Figure 10: Engine_high — sparse data, BSBRC wins at every P."""
    rows = _bench_figure(benchmark, 10)
    for p in PAPER_RANKS:
        c = cell(rows, "engine_high", p)
        assert c["bsbrc"].t_total == min(m.t_total for m in c.values()), p


def test_bench_figure11_cube(benchmark):
    """Figure 11: Cube — T_total(BSBRC) much less than T_total(BSBR) in
    all test cases; BSLC beats BSBR only at small P."""
    rows = _bench_figure(benchmark, 11)
    for p in PAPER_RANKS:
        c = cell(rows, "cube", p)
        assert c["bsbrc"].t_total < c["bsbr"].t_total, p
    c64 = cell(rows, "cube", 64)
    assert c64["bsbr"].t_total / c64["bsbrc"].t_total > 1.2


def test_bench_figure7_sample_images(benchmark, tmp_path):
    """Figure 7: render the four test samples (the rendering-phase work)."""
    paths = benchmark.pedantic(
        lambda: render_figure7(tmp_path, image_size=384), rounds=1, iterations=1
    )
    assert len(paths) == 4
    from repro.volume.io import read_pgm

    for path in paths:
        gray = read_pgm(path)
        assert gray.shape == (384, 384)
        assert int(gray.max()) > 32  # visibly non-empty render
