#!/usr/bin/env python
"""Simulator-scale benchmarks: the event engine's reason to exist.

Three measurements, all machine-readable in ``BENCH_sim_scale.json``:

``scheduler``
    Identical multi-frame workloads run on the min-heap **event** engine
    and on the retained round-robin **lockstep** oracle, after asserting
    their virtual results agree exactly.  The ``ring`` workload is a
    pipelined ring composite (the registry's ``pipeline`` method shape):
    progress is fully serialized, so the lockstep engine pays a full
    O(P) resolve scan per completed hop — O(P²) per frame — while the
    event engine pays one heap pop.  This is the ≥ 10x acceptance
    criterion at P=256.  The ``swap+gather`` workload (binary-swap
    rounds plus a root gather per frame) shows the parallel-phase
    regime, where both engines do real matching work and the gap is
    structural rather than asymptotic.

``composite_p1024``
    Full compositing runs at P=1024 on synthetic sparse subimages
    (:mod:`repro.experiments.scale`) — binary-swap and radix-k
    ``(4,4,4,4,4)`` — each required to finish in < 10 s wall.

``engine_identity``
    Event vs lockstep on a real compositing run: final images compared
    bit-for-bit, per-rank byte/message totals and the makespan compared
    exactly.  The determinism contract, checked end to end.

Usage::

    python benchmarks/bench_sim_scale.py            # full scale
    python benchmarks/bench_sim_scale.py --smoke    # CI scale (seconds)
    python benchmarks/bench_sim_scale.py --update   # write baseline JSON
    python benchmarks/bench_sim_scale.py --check    # exit 1 on regression

``--check`` enforces the full-mode floors (P=1024 runs < 10 s, ring
speedup ≥ 10x at P=256) and, in any mode, fails when a workload's wall
time exceeds ``REGRESSION_FACTOR`` x the committed baseline for the
same mode — the CI smoke guard.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_sim_scale.json"
)

#: A workload "regresses" when its wall time doubles versus the baseline.
REGRESSION_FACTOR = 2.0
#: Full-mode acceptance floors.
P1024_WALL_CEILING_S = 10.0
SPEEDUP_FLOOR_P256 = 10.0


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------------
# scheduler workloads (raw Simulator programs)
# --------------------------------------------------------------------------
def ring_workload(frames: int):
    """Pipelined ring composite: each frame's token circulates the ring.

    Fully serialized — exactly one rank can progress at any virtual
    instant, so the scheduler itself is the measured quantity.
    """

    def factory(ctx):
        async def program():
            size, rank = ctx.size, ctx.rank
            for frame in range(frames):
                if rank == 0:
                    if frame:
                        await ctx.recv(size - 1, tag=frame - 1)
                    await ctx.send(1, b"t", nbytes=1024, tag=frame)
                else:
                    await ctx.recv(rank - 1, tag=frame)
                    await ctx.compute(1e-7)
                    await ctx.send((rank + 1) % size, b"t", nbytes=1024, tag=frame)
            if rank == 0:
                await ctx.recv(size - 1, tag=frames - 1)

        return program()

    return factory


def swap_gather_workload(frames: int):
    """Binary-swap rounds plus a serialized root gather, per frame."""

    def factory(ctx):
        async def program():
            size, rank = ctx.size, ctx.rank
            rounds = size.bit_length() - 1
            for frame in range(frames):
                ctx.begin_stage(frame)
                nbytes = 16384
                for k in range(rounds):
                    peer = rank ^ (1 << k)
                    nbytes //= 2
                    await ctx.sendrecv(peer, b"x", nbytes=nbytes, tag=frame * 64 + k)
                if rank == 0:
                    for src in range(1, size):
                        await ctx.recv(src, tag=frame * 64 + 63)
                else:
                    await ctx.send(0, b"g", nbytes=256, tag=frame * 64 + 63)

        return program()

    return factory


def bench_scheduler(smoke: bool) -> dict:
    from repro.cluster.model import SP2
    from repro.cluster.simulator import Simulator

    if smoke:
        cases = [("ring", ring_workload, 256, 12), ("swap+gather", swap_gather_workload, 256, 4)]
        repeats = 2
    else:
        cases = [
            ("ring", ring_workload, 64, 24),
            ("ring", ring_workload, 256, 24),
            ("swap+gather", swap_gather_workload, 256, 8),
        ]
        repeats = 3

    rows: dict[str, dict] = {}
    for name, make, num_ranks, frames in cases:
        results = {}
        for engine in ("event", "lockstep"):
            results[engine] = Simulator(num_ranks, SP2, engine=engine).run(make(frames))
        ev, ls = results["event"], results["lockstep"]
        if ev.makespan != ls.makespan:
            raise AssertionError(
                f"{name} P={num_ranks}: engines disagree on makespan "
                f"({ev.makespan} vs {ls.makespan})"
            )
        for r in range(num_ranks):
            if ev.rank_stats[r].comm_time != ls.rank_stats[r].comm_time:
                raise AssertionError(f"{name} P={num_ranks}: rank {r} comm_time differs")
        event_s = _best(
            lambda: Simulator(num_ranks, SP2, engine="event").run(make(frames)), repeats
        )
        lockstep_s = _best(
            lambda: Simulator(num_ranks, SP2, engine="lockstep").run(make(frames)), repeats
        )
        rows[f"{name}_p{num_ranks}"] = {
            "detail": f"{name} workload, P={num_ranks}, {frames} frames, identical virtual results",
            "event_s": event_s,
            "lockstep_s": lockstep_s,
            "speedup": lockstep_s / event_s,
            "makespan": ev.makespan,
        }
    return rows


# --------------------------------------------------------------------------
# at-scale compositing
# --------------------------------------------------------------------------
def bench_composite(smoke: bool) -> dict:
    from repro.cluster.model import SP2
    from repro.experiments.scale import VIEW_DIR, synthetic_subimages
    from repro.pipeline.system import run_compositing
    from repro.volume.partition import recursive_bisect

    num_ranks = 256 if smoke else 1024
    image_size = 96
    fill = 0.2
    radix = (4, 4, 4, 4) if smoke else (4, 4, 4, 4, 4)
    plan = recursive_bisect((64, 64, 64), num_ranks)

    rows: dict[str, dict] = {}
    for key, method, options in (
        ("binary_swap", "bs", {}),
        ("radix_k", "radix-k:rect-rle", {"radix": radix}),
    ):
        images = synthetic_subimages(num_ranks, image_size, fill)
        t0 = time.perf_counter()
        run = run_compositing(images, method, plan, VIEW_DIR, SP2, **options)
        wall_s = time.perf_counter() - t0
        rows[f"{key}_p{num_ranks}"] = {
            "detail": (
                f"{run.method} P={num_ranks}, {image_size}px synthetic fill={fill}"
            ),
            "wall_s": wall_s,
            "modelled_makespan_s": run.stats.makespan,
        }
        del images, run
    return rows


# --------------------------------------------------------------------------
# engine identity on a real compositing run
# --------------------------------------------------------------------------
def bench_identity(smoke: bool) -> dict:
    from repro.cluster.model import SP2
    from repro.experiments.scale import VIEW_DIR, synthetic_subimages
    from repro.pipeline.system import run_compositing
    from repro.volume.partition import recursive_bisect

    num_ranks = 64 if smoke else 256
    plan = recursive_bisect((64, 64, 64), num_ranks)
    runs = {}
    for engine in ("event", "lockstep"):
        images = synthetic_subimages(num_ranks, 96, 0.2)
        runs[engine] = run_compositing(
            images, "bsbrc", plan, VIEW_DIR, SP2, engine=engine
        )
    ev, ls = runs["event"], runs["lockstep"]
    for oe, ol in zip(ev.outcomes, ls.outcomes):
        if not (
            np.array_equal(oe.image.intensity, ol.image.intensity)
            and np.array_equal(oe.image.opacity, ol.image.opacity)
        ):
            raise AssertionError("event and lockstep engines produced different images")
    if ev.stats.makespan != ls.stats.makespan:
        raise AssertionError("event and lockstep engines disagree on makespan")
    for r in range(num_ranks):
        se, sl = ev.stats.rank_stats[r], ls.stats.rank_stats[r]
        if (se.bytes_sent, se.msgs_sent, se.comm_time, se.comp_time) != (
            sl.bytes_sent, sl.msgs_sent, sl.comm_time, sl.comp_time
        ):
            raise AssertionError(f"rank {r}: per-rank accounting differs between engines")
    return {
        "detail": f"bsbrc P={num_ranks}: images, per-rank accounting and makespan bit-identical",
        "checked_ranks": num_ranks,
        "makespan": ev.stats.makespan,
    }


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------
def run(smoke: bool) -> dict:
    results: dict[str, dict] = {}
    results["scheduler"] = bench_scheduler(smoke)
    results["composite"] = bench_composite(smoke)
    results["engine_identity"] = bench_identity(smoke)
    return results


def check(results: dict, baseline_modes: dict, mode: str) -> list[str]:
    problems: list[str] = []
    baseline = baseline_modes.get(mode, {})

    # Wall-clock regression guard (the CI smoke job's teeth).
    for section in ("scheduler", "composite"):
        base_rows = baseline.get(section, {})
        for name, row in results.get(section, {}).items():
            wall_key = "event_s" if "event_s" in row else "wall_s"
            base = base_rows.get(name)
            if base and wall_key in base:
                if row[wall_key] > base[wall_key] * REGRESSION_FACTOR:
                    problems.append(
                        f"{section}/{name}: {row[wall_key]:.3f} s is >"
                        f"{REGRESSION_FACTOR:g}x the recorded baseline "
                        f"{base[wall_key]:.3f} s"
                    )

    if mode == "full":
        for name, row in results.get("composite", {}).items():
            if row["wall_s"] >= P1024_WALL_CEILING_S:
                problems.append(
                    f"composite/{name}: {row['wall_s']:.2f} s breaches the "
                    f"{P1024_WALL_CEILING_S:g} s ceiling"
                )
        ring = results.get("scheduler", {}).get("ring_p256")
        if ring and ring["speedup"] < SPEEDUP_FLOOR_P256:
            problems.append(
                f"scheduler/ring_p256: speedup {ring['speedup']:.1f}x is below "
                f"the promised {SPEEDUP_FLOOR_P256:g}x floor"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="reduced CI-scale variant (P=256)")
    parser.add_argument("--check", action="store_true", help="exit 1 on regression vs baseline")
    parser.add_argument("--update", action="store_true", help="record results in the baseline JSON")
    parser.add_argument("--out", default=BASELINE_PATH, help="baseline JSON path")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    results = run(args.smoke)

    print(f"simulator-scale benchmarks ({mode} mode):")
    for name, row in results["scheduler"].items():
        print(
            f"  scheduler {name:18s} event {row['event_s'] * 1e3:9.1f} ms   "
            f"lockstep {row['lockstep_s'] * 1e3:9.1f} ms   "
            f"speedup {row['speedup']:6.1f}x"
        )
    for name, row in results["composite"].items():
        print(
            f"  composite {name:18s} wall {row['wall_s']:9.2f} s    "
            f"modelled {row['modelled_makespan_s'] * 1e3:9.2f} ms"
        )
    print(f"  identity  {results['engine_identity']['detail']}")

    modes: dict = {}
    if os.path.exists(args.out):
        with open(args.out, "r", encoding="utf-8") as fh:
            modes = json.load(fh).get("modes", {})

    problems = check(results, modes, mode)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)

    if args.update:
        modes[mode] = results
        payload = {
            "schema": 1,
            "note": (
                "simulator-scale results from benchmarks/bench_sim_scale.py; "
                "'scheduler' times identical workloads on the event vs lockstep "
                "engines (virtual results asserted equal first), 'composite' is "
                "wall time for full P=1024 compositing runs on synthetic sparse "
                "subimages, 'engine_identity' checks bit-identical results end "
                "to end"
            ),
            "modes": modes,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[baseline written to {args.out}]")

    if problems and args.check:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
