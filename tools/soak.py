#!/usr/bin/env python
"""Nightly chaos soak: loop the randomized fault matrix on fresh seeds.

Each iteration runs the chaos + recovery suites with a distinct
``REPRO_CHAOS_SEED_OFFSET``, so the randomized matrix keeps exploring
new fault scenarios while every failure stays reproducible: on a failing
iteration the exact seed window is known, and the fault plans behind it
are regenerated (via :func:`repro.cluster.faults.random_plan`) and saved
as ``repro.fault-plan/1`` JSON artifacts for the bug report.

Usage::

    python tools/soak.py [--minutes N] [--artifacts DIR] [--offset-step K]

Environment:

* ``SOAK_MINUTES`` — default time budget (CLI ``--minutes`` wins).
* ``REPRO_CHAOS_SEED_OFFSET`` — starting offset (default: derived from
  the clock so independent nightly runs diverge).

Exit status is non-zero when any iteration failed; the artifacts
directory then holds one ``fail-<offset>/`` folder per failing window
with the pytest tail and the regenerated fault plans.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Mirrors the chaos matrix geometry (tests/test_chaos.py).
MATRIX_SEEDS = 8
NUM_RANKS = 4
NUM_STAGES = 2


def _pytest_command(offset: int, timeout_flag: bool) -> list[str]:
    cmd = [
        sys.executable, "-m", "pytest",
        "tests/test_chaos.py", "tests/test_recovery.py", "-q",
    ]
    if timeout_flag:
        cmd += ["--timeout=120", "--timeout-method=signal"]
    return cmd


def _have_pytest_timeout() -> bool:
    try:
        import pytest_timeout  # noqa: F401
        return True
    except ImportError:
        return False


def _save_failure_artifacts(artifacts: str, offset: int, output: str) -> None:
    """Persist the failing window: pytest tail + regenerated fault plans."""
    folder = os.path.join(artifacts, f"fail-{offset}")
    os.makedirs(folder, exist_ok=True)
    with open(os.path.join(folder, "pytest-output.txt"), "w", encoding="utf-8") as fh:
        fh.write(output)
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.cluster.faults import random_plan

        for seed in range(offset, offset + MATRIX_SEEDS):
            plan = random_plan(seed, num_ranks=NUM_RANKS, num_stages=NUM_STAGES)
            plan.save(os.path.join(folder, f"fault-plan-seed{seed}.json"))
    except Exception as exc:  # artifact capture is best-effort
        with open(os.path.join(folder, "plan-dump-error.txt"), "w", encoding="utf-8") as fh:
            fh.write(repr(exc))
    finally:
        sys.path.pop(0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--minutes", type=float,
        default=float(os.environ.get("SOAK_MINUTES", "20")),
        help="soak time budget in minutes (default: $SOAK_MINUTES or 20)",
    )
    parser.add_argument(
        "--artifacts", default=os.path.join(REPO_ROOT, "soak-artifacts"),
        help="where failing fault plans and logs are written",
    )
    parser.add_argument(
        "--offset-step", type=int, default=MATRIX_SEEDS,
        help="seed-offset stride between iterations (default: matrix width)",
    )
    args = parser.parse_args(argv)

    offset = int(
        os.environ.get("REPRO_CHAOS_SEED_OFFSET", str(int(time.time()) % 100_000))
    )
    deadline = time.monotonic() + args.minutes * 60.0
    timeout_flag = _have_pytest_timeout()
    env_base = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))

    iterations = failures = 0
    while time.monotonic() < deadline:
        iterations += 1
        env = dict(env_base, REPRO_CHAOS_SEED_OFFSET=str(offset))
        started = time.monotonic()
        proc = subprocess.run(
            _pytest_command(offset, timeout_flag),
            cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        elapsed = time.monotonic() - started
        status = "ok" if proc.returncode == 0 else f"FAIL rc={proc.returncode}"
        print(
            f"[soak] iteration {iterations} offset={offset} "
            f"{elapsed:.0f}s: {status}",
            flush=True,
        )
        if proc.returncode != 0:
            failures += 1
            tail = "\n".join(proc.stdout.splitlines()[-200:])
            _save_failure_artifacts(args.artifacts, offset, tail)
        offset += args.offset_step

    print(f"[soak] done: {iterations} iterations, {failures} failing windows")
    if failures:
        print(f"[soak] artifacts in {args.artifacts}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
