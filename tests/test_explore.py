"""Schedule-exploration engine: policies, trace record/replay, explorer.

Covers the :class:`~repro.cluster.schedule_policy.SchedulePolicy` hook
in the event engine (tie / wildcard / fault freedom), the pinned
invariants no policy may relax (exact-before-wildcard, FIFO per
channel), the ``repro.sched-trace/1`` record/replay loop, the
:class:`~repro.cluster.explore.Explorer` classification harness, the
delivery-order insensitivity of the tile-routed plane, and the CLI
``explore`` surface.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster.collectives import route_tiles
from repro.cluster.explore import (
    EXPLORE_REPORT_SCHEMA,
    Explorer,
    ExploreScenario,
    default_fault_plan,
)
from repro.cluster.backend import MPBackend
from repro.cluster.events import ANY_TAG
from repro.cluster.model import SP2
from repro.cluster.schedule_policy import (
    ADVERSARIAL_MODES,
    SCHED_TRACE_SCHEMA,
    AdversarialPolicy,
    DeterministicPolicy,
    ForcedPrefixPolicy,
    RandomPolicy,
    ReplayPolicy,
    SchedulePolicy,
    load_trace,
    make_policy,
)
from repro.cluster.simulator import Simulator
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    LivelockError,
    ReproError,
)
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem

SMALL = dict(dataset="engine_low", volume_shape=(16, 16, 8), image_size=16)


def _system(method="binary-swap:raw", num_ranks=4, **overrides):
    cfg_kwargs = dict(SMALL)
    cfg_kwargs.update(overrides)
    return SortLastSystem(RunConfig(method=method, num_ranks=num_ranks, **cfg_kwargs))


def _pixels(image):
    return np.stack([image.intensity, image.opacity])


def _counters(timeline):
    out = []
    for rs in timeline.rank_stats:
        for st in rs.sorted_stages():
            out.append(
                (rs.rank, st.stage, st.bytes_sent, st.bytes_recv,
                 st.msgs_sent, st.msgs_recv, tuple(sorted(st.counters.items())))
            )
    return out


# ---------------------------------------------------------------------------
# Policy objects and trace serialization
# ---------------------------------------------------------------------------
class TestPolicyBasics:
    def test_make_policy_specs(self):
        assert make_policy("deterministic").name == "deterministic"
        assert make_policy("random").name == "random:0"
        assert make_policy("random:17").name == "random:17"
        assert make_policy("random", seed=5).name == "random:5"
        assert make_policy("adversarial").name == "adversarial:starve-low"
        assert make_policy("adversarial:lifo").name == "adversarial:lifo"
        assert make_policy("dfs").name == "dfs:0"
        assert isinstance(make_policy("dfs"), ForcedPrefixPolicy)

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown schedule policy"):
            make_policy("fifo")

    def test_adversarial_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown adversarial mode"):
            AdversarialPolicy("chaotic")

    def test_decide_validates_choice(self):
        class Bad(SchedulePolicy):
            explores_ties = True

            def choose_index(self, kind, candidates, digest):
                return 99

        with pytest.raises(ConfigurationError, match="chose index 99"):
            Bad().decide("tie", [{"rank": 0, "seq": 0}], "digest")

    def test_decisions_and_compact(self):
        policy = RandomPolicy(0)
        policy.decide("tie", [{"rank": 0, "seq": 0}, {"rank": 1, "seq": 1}], "d")
        policy.fault_decision(2, 0, "crash", 0.5, default=False)
        assert [d["kind"] for d in policy.decisions] == ["tie", "fault"]
        assert policy.compact().startswith("tie:")
        policy.reset()
        assert policy.decisions == []

    def test_trace_roundtrip(self, tmp_path):
        policy = RandomPolicy(3)
        policy.decide("tie", [{"rank": 0, "seq": 0}, {"rank": 1, "seq": 2}], "abc")
        path = policy.save_trace(str(tmp_path / "t.json"), meta={"k": "v"})
        assert policy.trace_path == path
        trace = load_trace(path)
        assert trace["schema"] == SCHED_TRACE_SCHEMA
        assert trace["policy"] == "random:3"
        assert trace["meta"] == {"k": "v"}
        replay = ReplayPolicy(trace)
        assert replay.name == "replay:random:3"
        assert replay.recorded == policy.decisions

    def test_load_trace_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.fault-plan/1"}))
        with pytest.raises(ConfigurationError, match="unsupported schedule-trace"):
            load_trace(str(path))
        with pytest.raises(ConfigurationError, match="unsupported schedule-trace"):
            ReplayPolicy({"schema": "nope"})


# ---------------------------------------------------------------------------
# The deterministic policy is the existing engine, bit for bit
# ---------------------------------------------------------------------------
class TestDeterministicOracle:
    def test_bit_identical_to_no_policy(self):
        base = _system().run()
        policy = DeterministicPolicy()
        explored = _system().run(schedule_policy=policy)
        assert policy.decisions == []  # never consulted
        assert np.array_equal(_pixels(base.final_image), _pixels(explored.final_image))
        assert _counters(base.timeline) == _counters(explored.timeline)
        assert base.timeline.makespan == explored.timeline.makespan

    @pytest.mark.parametrize("method", ["binary-swap:raw", "tile-routed:rle"])
    @pytest.mark.parametrize("num_ranks", [4, 8])
    def test_explored_clean_runs_stay_bit_identical(self, method, num_ranks):
        """Satellite invariant: policy shuffles (delivery reorderings)
        never change pixels or integer counters — only float timings."""
        base = _system(method, num_ranks).run()
        policies = [RandomPolicy(11), RandomPolicy(12)] + [
            AdversarialPolicy(mode) for mode in ADVERSARIAL_MODES
        ]
        for policy in policies:
            run = _system(method, num_ranks).run(schedule_policy=policy)
            assert np.array_equal(
                _pixels(base.final_image), _pixels(run.final_image)
            ), f"{method} P={num_ranks} pixels drifted under {policy.name}"
            assert _counters(base.timeline) == _counters(run.timeline), (
                f"{method} P={num_ranks} counters drifted under {policy.name}"
            )


# ---------------------------------------------------------------------------
# Pinned matching invariants (satellite: wildcard-tie documentation fix)
# ---------------------------------------------------------------------------
def _all_policies():
    return [DeterministicPolicy(), RandomPolicy(1), RandomPolicy(2)] + [
        AdversarialPolicy(mode) for mode in ADVERSARIAL_MODES
    ]


class TestPinnedInvariants:
    def test_fifo_per_channel_unviolable(self):
        """Messages on one (src, dst, tag) channel deliver in post order
        under every policy — only deque heads are wildcard candidates."""

        async def program(ctx):
            if ctx.rank == 0:
                reqs = [await ctx.isend(1, f"m{i}".encode(), tag=7) for i in range(4)]
                for req in reqs:
                    await ctx.wait(req)
                return None
            await ctx.compute(1e-6)
            got = []
            for _ in range(4):
                req = await ctx.irecv(0, tag=ANY_TAG)
                got.append(await ctx.wait(req))
            return got

        for policy in _all_policies():
            result = Simulator(2, SP2, policy=policy).run(program)
            assert result.returns[1] == [b"m0", b"m1", b"m2", b"m3"], policy.name

    def test_exact_tag_beats_wildcard(self):
        """An arriving isend is offered to the exact-tag irecv first;
        no policy may hand it to a pending wildcard instead.

        A "go" message forces the causal order (both irecvs posted
        before either isend) so the invariant is exercised no matter
        which rank a policy runs first at the t=0 tie.
        """

        async def program(ctx):
            if ctx.rank == 1:
                await ctx.recv(0, tag=0)  # wait until both irecvs exist
                req = await ctx.isend(0, b"tagged", tag=9)
                await ctx.wait(req)
                req = await ctx.isend(0, b"other", tag=3)
                await ctx.wait(req)
                return None
            wild = await ctx.irecv(1, tag=ANY_TAG)
            exact = await ctx.irecv(1, tag=9)
            await ctx.send(1, b"go", tag=0)
            got_exact = await ctx.wait(exact)
            got_wild = await ctx.wait(wild)
            return (got_exact, got_wild)

        for policy in _all_policies():
            result = Simulator(2, SP2, policy=policy).run(program)
            assert result.returns[0] == (b"tagged", b"other"), policy.name

    def test_wildcard_default_is_oldest_post_then_tag(self):
        """The documented oracle order: oldest post wins, exact tag value
        breaks equal posts — not an arbitrary 'broken by tag' rule."""

        async def program(ctx):
            if ctx.rank == 0:
                r6 = await ctx.isend(1, b"six", tag=6)
                r5 = await ctx.isend(1, b"five", tag=5)
                await ctx.wait(r6)
                await ctx.wait(r5)
                return None
            await ctx.compute(1e-6)
            first = await ctx.wait(await ctx.irecv(0, tag=ANY_TAG))
            second = await ctx.wait(await ctx.irecv(0, tag=ANY_TAG))
            return (first, second)

        result = Simulator(2, SP2).run(program)
        # Both isends post at the same virtual time: the lower tag wins
        # the tie even though it was issued second.
        assert result.returns[1] == (b"five", b"six")


# ---------------------------------------------------------------------------
# The seeded ordering bug: caught, trace saved, replays to the same failure
# ---------------------------------------------------------------------------
def _buggy_wildcard_program():
    """A receiver that assumes its ANY_TAG wait always matches tag 5.

    Under the default order it does (oldest post wins); a policy that
    draws the wildcard from the newest channel hands it tag 6 instead,
    and the later exact ``irecv(tag=6)`` starves: deadlock.
    """

    async def program(ctx):
        if ctx.rank == 0:
            r5 = await ctx.isend(1, b"five", tag=5)
            r6 = await ctx.isend(1, b"six", tag=6)
            await ctx.wait(r5)
            await ctx.wait(r6)
            return "src"
        await ctx.compute(1e-6)
        first = await ctx.wait(await ctx.irecv(0, tag=ANY_TAG))
        second = await ctx.wait(await ctx.irecv(0, tag=6))
        return (first, second)

    return program


class TestSeededOrderingBug:
    def test_deterministic_order_hides_the_bug(self):
        result = Simulator(2, SP2, policy=DeterministicPolicy()).run(
            _buggy_wildcard_program()
        )
        assert result.returns == ["src", (b"five", b"six")]

    def test_adversarial_exposes_and_trace_replays_it(self, tmp_path):
        policy = AdversarialPolicy("starve-high")
        with pytest.raises(DeadlockError) as excinfo:
            Simulator(2, SP2, policy=policy).run(_buggy_wildcard_program())
        err = excinfo.value
        assert err.sched_policy == "adversarial:starve-high"
        assert any(d["kind"] == "wildcard" for d in err.sched_decisions)
        assert "adversarial:starve-high" in str(err)

        path = policy.save_trace(str(tmp_path / "bug.json"))
        # The replay must reproduce the deadlock deterministically —
        # twice, to rule out hidden state.
        for _ in range(2):
            replay = ReplayPolicy(load_trace(path))
            with pytest.raises(DeadlockError) as replayed:
                Simulator(2, SP2, policy=replay).run(_buggy_wildcard_program())
            assert replayed.value.sched_policy == "replay:adversarial:starve-high"
            assert replay.decisions == policy.decisions

    def test_deadlock_error_embeds_trace_path_when_assigned(self):
        policy = AdversarialPolicy("starve-high")
        policy.trace_path = "/some/dir/trace-0001.json"
        with pytest.raises(DeadlockError) as excinfo:
            Simulator(2, SP2, policy=policy).run(_buggy_wildcard_program())
        assert excinfo.value.sched_trace == "/some/dir/trace-0001.json"
        assert "/some/dir/trace-0001.json" in str(excinfo.value)

    def test_replay_divergence_is_loud(self, tmp_path):
        policy = AdversarialPolicy("starve-high")
        with pytest.raises(DeadlockError):
            Simulator(2, SP2, policy=policy).run(_buggy_wildcard_program())
        path = policy.save_trace(str(tmp_path / "bug.json"))

        async def different(ctx):  # not the recorded program at all
            if ctx.rank == 0:
                await ctx.send(1, b"x", tag=1)
            else:
                await ctx.recv(0, tag=1)

        replay = ReplayPolicy(load_trace(path))
        with pytest.raises((ConfigurationError, DeadlockError)):
            Simulator(2, SP2, policy=replay).run(different)


# ---------------------------------------------------------------------------
# Engine plumbing: ties, fault freedom, budgets, guards
# ---------------------------------------------------------------------------
class TestEnginePlumbing:
    def test_tie_decisions_recorded_and_replayable(self):
        async def program(ctx):
            await ctx.compute(1e-3)
            await ctx.barrier()
            return ctx.rank

        policy = RandomPolicy(5)
        result = Simulator(4, SP2, policy=policy).run(program)
        assert result.returns == [0, 1, 2, 3]
        assert any(d["kind"] == "tie" for d in policy.decisions)
        for rec in policy.decisions:
            assert rec["kind"] in ("tie", "wildcard", "fault")
            assert 0 <= rec["choice"] < rec["n"]

        replay = ReplayPolicy(policy.trace_dict())
        Simulator(4, SP2, policy=replay).run(program)
        assert replay.decisions == policy.decisions

    def test_event_budget_raises_livelock(self):
        async def program(ctx):
            for _ in range(100):
                await ctx.compute(1e-6)

        policy = RandomPolicy(0)
        policy.event_budget = 10
        with pytest.raises(LivelockError, match="event budget"):
            Simulator(2, SP2, policy=policy).run(program)

    def test_exploring_policy_requires_event_engine(self):
        with pytest.raises(ConfigurationError, match="event"):
            Simulator(2, SP2, engine="lockstep", policy=RandomPolicy(0))
        # Non-exploring policies are fine anywhere.
        Simulator(2, SP2, engine="lockstep", policy=DeterministicPolicy())

    def test_real_transports_reject_exploring_policies(self):
        async def program(ctx):
            return ctx.rank

        with pytest.raises(ConfigurationError, match="schedule exploration"):
            MPBackend().run(2, program, schedule_policy=RandomPolicy(0))

    def test_fault_freedom_is_policy_controlled(self):
        """The same probabilistic plan fires or not on the policy's say,
        and the decision is recorded with rule provenance."""
        plan = default_fault_plan(4)
        force = AdversarialPolicy("starve-low")   # forces faults on
        suppress = AdversarialPolicy("starve-high")  # forces faults off
        forced = _system(num_ranks=4).run(fault_plan=plan, schedule_policy=force)
        clean = _system(num_ranks=4).run(fault_plan=plan, schedule_policy=suppress)
        assert forced.degraded
        assert not clean.degraded
        fault_recs = [d for d in force.decisions if d["kind"] == "fault"]
        assert fault_recs and fault_recs[0]["choice"] == 1
        assert fault_recs[0]["fault"] == "crash"


# ---------------------------------------------------------------------------
# Run-timeline meta mirror
# ---------------------------------------------------------------------------
class TestTimelineMeta:
    def test_plain_run_has_outcome_and_no_schedule_keys(self):
        result = _system().run()
        assert result.timeline.meta["outcome"] == "clean"
        assert "schedule_policy" not in result.timeline.meta

    def test_policy_run_mirrors_schedule_meta(self):
        policy = RandomPolicy(8)
        policy.trace_path = "/tmp/somewhere/trace.json"
        result = _system().run(schedule_policy=policy)
        meta = result.timeline.meta
        assert meta["outcome"] == "clean"
        assert meta["schedule_policy"] == "random:8"
        assert meta["schedule_decisions"] == len(policy.decisions)
        assert meta["schedule_trace"] == "/tmp/somewhere/trace.json"

    def test_degraded_outcome_declared(self):
        policy = AdversarialPolicy("starve-low")
        result = _system(num_ranks=4).run(
            fault_plan=default_fault_plan(4), schedule_policy=policy
        )
        assert result.degraded
        assert result.timeline.meta["outcome"] == "degraded"
        assert result.timeline.meta["schedule_policy"] == "adversarial:starve-low"


# ---------------------------------------------------------------------------
# The Explorer harness
# ---------------------------------------------------------------------------
def _scenario(method="binary-swap:raw", num_ranks=4, fault_plan="default"):
    plan = default_fault_plan(num_ranks) if fault_plan == "default" else fault_plan
    return ExploreScenario(
        method=method,
        num_ranks=num_ranks,
        fault_plan=plan,
        image_size=16,
        volume_shape=(16, 16, 8),
    )


class TestExplorer:
    def test_random_sweep_classifies_every_interleaving(self, tmp_path):
        explorer = Explorer(_scenario(), trace_dir=str(tmp_path))
        report = explorer.run_random(8, seed=0)
        assert len(report.results) == 8
        assert report.ok, report.counts()
        assert set(report.counts()) <= {"identical", "degraded", "resumed", "aborted"}
        # The coin-flip crash explores both branches across 6 walks.
        assert len(report.counts()) >= 2
        # Passing interleavings saved no traces.
        assert not os.path.exists(str(tmp_path)) or not os.listdir(str(tmp_path))

    def test_adversarial_rotation(self, tmp_path):
        explorer = Explorer(_scenario(), trace_dir=str(tmp_path))
        report = explorer.run_adversarial()
        assert len(report.results) == len(ADVERSARIAL_MODES)
        assert report.ok, report.counts()
        assert report.counts().get("degraded", 0) >= 1  # forced-fault modes

    def test_tile_routed_scenario(self, tmp_path):
        explorer = Explorer(_scenario(method="tile-routed:rle"), trace_dir=str(tmp_path))
        report = explorer.run_random(4, seed=3)
        assert report.ok, [r.to_dict() for r in report.failures]

    def test_dfs_enumerates_multiple_interleavings(self):
        explorer = Explorer(_scenario())
        report = explorer.run_dfs(6)
        assert 1 < len(report.results) <= 6
        assert report.ok, report.counts()
        # The fault decision's sibling branch was explored.
        assert len(report.counts()) >= 2

    def test_replay_reproduces_bit_for_bit(self, tmp_path):
        explorer = Explorer(_scenario(), trace_dir=str(tmp_path), keep_all=True)
        first = explorer.classify(RandomPolicy(42), index=0)
        assert first.ok and first.trace_path
        replayed = explorer.replay(first.trace_path)
        assert replayed.classification == first.classification
        assert replayed.outcome == first.outcome
        assert replayed.decisions == first.decisions

    def test_trace_is_self_contained(self, tmp_path):
        explorer = Explorer(_scenario(), trace_dir=str(tmp_path), keep_all=True)
        first = explorer.classify(RandomPolicy(9), index=0)
        rebuilt = Explorer.from_trace(first.trace_path)
        assert rebuilt.scenario == explorer.scenario
        replayed = rebuilt.replay(first.trace_path)
        assert replayed.classification == first.classification

    def test_livelock_classification_saves_trace(self, tmp_path):
        explorer = Explorer(_scenario(), trace_dir=str(tmp_path))
        explorer.baseline()  # memoize before shrinking the budget
        explorer.event_budget = 5
        outcome = explorer.classify(RandomPolicy(1), index=0)
        assert outcome.classification == "livelock"
        assert outcome.trace_path and os.path.exists(outcome.trace_path)
        trace = load_trace(outcome.trace_path)
        assert trace["meta"]["scenario"]["method"] == "binary-swap:raw"

    def test_report_document(self, tmp_path):
        explorer = Explorer(_scenario())
        report = explorer.run_random(2, seed=1)
        path = tmp_path / "report.json"
        report.save(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == EXPLORE_REPORT_SCHEMA
        assert doc["interleavings"] == 2
        assert doc["ok"] is True
        assert doc["scenario"]["fault_plan"]["schema"] == "repro.fault-plan/1"

    def test_scenario_meta_roundtrip(self):
        scenario = _scenario(method="tile-routed:rle")
        assert ExploreScenario.from_meta(scenario.to_meta()) == scenario
        clean = _scenario(fault_plan=None)
        assert ExploreScenario.from_meta(clean.to_meta()) == clean
        assert not clean.destructive
        assert scenario.destructive


# ---------------------------------------------------------------------------
# Tile-routed delivery-order insensitivity (satellite 1)
# ---------------------------------------------------------------------------
def _reverse(order):
    return list(reversed(order))


def _interleave(order):
    """Even-index tiles first, then odd — an 'interleaved by tile' shuffle."""
    return order[::2] + order[1::2]


class TestTileDeliveryOrder:
    @pytest.mark.parametrize("num_ranks", [4, 8])
    @pytest.mark.parametrize("permute", [_reverse, _interleave])
    def test_route_tiles_push_order_insensitive(self, num_ranks, permute):
        num_tiles = 2 * num_ranks

        def make_program(push_order):
            async def program(ctx):
                owners = [t % ctx.size for t in range(num_tiles)]
                outgoing = {
                    t: (f"r{ctx.rank}t{t}".encode(), 16)
                    for t in range(num_tiles)
                    if owners[t] != ctx.rank
                }
                received = await route_tiles(
                    ctx, owners, outgoing, push_order=push_order
                )
                return {t: payloads for t, payloads in sorted(received.items())}

            return program

        base = Simulator(num_ranks, SP2).run(make_program(None))
        shuffled = Simulator(num_ranks, SP2).run(make_program(permute))
        assert base.returns == shuffled.returns

    def test_push_order_must_be_a_permutation(self):
        async def program(ctx):
            owners = [0, 0]
            outgoing = {}
            if ctx.rank == 1:
                outgoing = {0: (b"a", 1), 1: (b"b", 1)}
            return await route_tiles(
                ctx, owners, outgoing, push_order=lambda order: order[:1]
            )

        with pytest.raises(ReproError, match="push_order must permute"):
            Simulator(2, SP2).run(program)

    @pytest.mark.parametrize("num_ranks", [4, 8])
    def test_tile_routed_pipeline_insensitive_to_schedule_shuffles(self, num_ranks):
        """The full tile-routed compositor under adversarial schedule
        policies: pixels and counters bit-identical to the default
        ascending delivery order."""
        base = _system("tile-routed:rle", num_ranks).run()
        for policy in (AdversarialPolicy("lifo"), AdversarialPolicy("starve-low"),
                       RandomPolicy(77)):
            run = _system("tile-routed:rle", num_ranks).run(schedule_policy=policy)
            assert np.array_equal(
                _pixels(base.final_image), _pixels(run.final_image)
            ), policy.name
            assert _counters(base.timeline) == _counters(run.timeline), policy.name


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLI:
    def test_explore_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = str(tmp_path / "out")
        rc = main([
            "--out", out, "explore",
            "--method", "binary-swap:raw", "--ranks", "4",
            "--image-size", "16", "--interleavings", "2",
            "--policy", "random:30", "--fault-plan", "default",
            "--keep-all-traces",
        ])
        assert rc == 0
        report = json.loads((tmp_path / "out" / "explore.json").read_text())
        assert report["schema"] == EXPLORE_REPORT_SCHEMA
        assert report["ok"] is True
        traces = os.listdir(str(tmp_path / "out" / "sched-traces"))
        assert len(traces) == 2

    def test_explore_replay_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = str(tmp_path / "out")
        assert main([
            "--out", out, "explore",
            "--method", "binary-swap:raw", "--ranks", "4",
            "--image-size", "16", "--interleavings", "1",
            "--policy", "random:30", "--fault-plan", "default",
            "--keep-all-traces",
        ]) == 0
        trace_dir = tmp_path / "out" / "sched-traces"
        trace = str(trace_dir / sorted(os.listdir(str(trace_dir)))[0])
        assert main(["--out", out, "explore", "--replay-trace", trace]) == 0
        text = (tmp_path / "out" / "explore_replay.txt").read_text()
        assert "replay:random:30" in text

    def test_explore_rejects_bad_policy(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main([
                "--out", str(tmp_path), "explore",
                "--ranks", "4", "--policy", "bogus",
            ])
