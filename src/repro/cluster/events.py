"""Awaitable operation requests understood by the cluster simulator.

Rank programs are plain ``async def`` coroutines.  They never touch an
event loop directly: every blocking action is expressed by awaiting one of
the request objects below (normally via the :class:`~repro.cluster.context.
RankContext` convenience methods).  The :class:`~repro.cluster.simulator.
Simulator` receives the request from the coroutine's ``yield``, decides
when it completes in *virtual time*, and resumes the coroutine with the
operation's result.

This mirrors how ``await`` works on real event loops, but the loop here is
a deterministic discrete-event scheduler with per-rank virtual clocks.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = [
    "Op",
    "ComputeOp",
    "SendOp",
    "RecvOp",
    "SendRecvOp",
    "BarrierOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "Request",
    "ANY_TAG",
]

#: Wildcard tag accepted by :class:`RecvOp`.
ANY_TAG = -1


class Op:
    """Base class of all simulator requests.

    Awaiting an ``Op`` suspends the coroutine and hands the request to the
    simulator; the value the simulator injects back becomes the result of
    the ``await`` expression.
    """

    __slots__ = ()

    def __await__(self) -> Generator["Op", Any, Any]:
        result = yield self
        return result


class ComputeOp(Op):
    """Advance the local clock by ``seconds`` of computation.

    ``kind`` and ``count`` are bookkeeping only: they let the stats layer
    attribute the time to a named counter (e.g. ``"over"`` with the number
    of pixels composited) so analytic-model cross-checks can recover the
    raw operation counts.
    """

    __slots__ = ("seconds", "kind", "count")

    def __init__(self, seconds: float, kind: str = "compute", count: int = 0):
        if not (seconds >= 0.0):
            raise ValueError(f"compute seconds must be >= 0, got {seconds!r}")
        self.seconds = float(seconds)
        self.kind = kind
        self.count = int(count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ComputeOp({self.seconds:.3e}s, kind={self.kind!r}, count={self.count})"


class SendOp(Op):
    """Blocking (rendezvous) send of ``payload`` (``nbytes`` on the wire)."""

    __slots__ = ("dst", "payload", "nbytes", "tag")

    def __init__(self, dst: int, payload: Any, nbytes: int, tag: int = 0):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if tag < 0:
            raise ValueError(f"send tag must be >= 0, got {tag}")
        self.dst = int(dst)
        self.payload = payload
        self.nbytes = int(nbytes)
        self.tag = int(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SendOp(dst={self.dst}, nbytes={self.nbytes}, tag={self.tag})"


class RecvOp(Op):
    """Blocking receive from ``src`` (tag must match, or :data:`ANY_TAG`)."""

    __slots__ = ("src", "tag")

    def __init__(self, src: int, tag: int = ANY_TAG):
        self.src = int(src)
        self.tag = int(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecvOp(src={self.src}, tag={self.tag})"


class SendRecvOp(Op):
    """Simultaneous exchange with ``peer`` (the binary-swap primitive).

    Both ranks of a pair must post a matching ``SendRecvOp`` naming each
    other with the same tag.  Each side's result is the peer's payload.
    Using a single primitive (rather than careful send/recv ordering)
    makes pairwise exchange deadlock-free by construction, exactly like
    ``MPI_Sendrecv``.
    """

    __slots__ = ("peer", "payload", "nbytes", "tag")

    def __init__(self, peer: int, payload: Any, nbytes: int, tag: int = 0):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if tag < 0:
            raise ValueError(f"sendrecv tag must be >= 0, got {tag}")
        self.peer = int(peer)
        self.payload = payload
        self.nbytes = int(nbytes)
        self.tag = int(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SendRecvOp(peer={self.peer}, nbytes={self.nbytes}, tag={self.tag})"


class BarrierOp(Op):
    """Global synchronization across every rank of the simulation."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BarrierOp()"


class Request:
    """Handle for a nonblocking operation (returned by isend/irecv).

    Filled in by the simulator when the operation matches its
    counterpart: ``arrival`` is the virtual time the transfer finishes on
    the receiver's link, ``payload`` the delivered object (receives
    only).  Await :class:`WaitOp` (via ``ctx.wait``/``ctx.wait_all``) to
    block until completion.
    """

    __slots__ = ("kind", "rank", "peer", "tag", "nbytes", "post_time",
                 "payload", "matched", "arrival", "waiter")

    def __init__(self, kind: str, rank: int, peer: int, tag: int,
                 nbytes: int, post_time: float, payload: Any = None):
        self.kind = kind  # "isend" | "irecv"
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.post_time = post_time
        self.payload = payload
        self.matched = False
        self.arrival: float | None = None
        # Event-engine hook: the proc blocked in a WaitOp on this request
        # (set by the scheduler so a late match can wake the waiter).
        self.waiter: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"arrival={self.arrival:.6f}" if self.matched else "pending"
        return f"Request({self.kind}, rank={self.rank}, peer={self.peer}, {state})"


class IsendOp(Op):
    """Nonblocking (eager, buffered) send: returns a :class:`Request`
    immediately; the transfer runs in the background and the request
    completes when the bytes have cleared the receiver's link."""

    __slots__ = ("dst", "payload", "nbytes", "tag")

    def __init__(self, dst: int, payload: Any, nbytes: int, tag: int = 0):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if tag < 0:
            raise ValueError(f"isend tag must be >= 0, got {tag}")
        self.dst = int(dst)
        self.payload = payload
        self.nbytes = int(nbytes)
        self.tag = int(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IsendOp(dst={self.dst}, nbytes={self.nbytes}, tag={self.tag})"


class IrecvOp(Op):
    """Nonblocking receive: returns a :class:`Request` immediately.

    Matches isends from ``src`` by exact tag in FIFO post order, or by
    :data:`ANY_TAG` (the default via ``ctx.irecv``), which accepts the
    oldest pending isend from ``src`` regardless of tag.  Nonblocking
    ops only pair with nonblocking counterparts — mixing isend with a
    blocking recv is rejected by the matcher staying silent (and
    surfaces as a deadlock), keeping the two protocols' timing
    semantics separate.
    """

    __slots__ = ("src", "tag")

    def __init__(self, src: int, tag: int = ANY_TAG):
        if tag < 0 and tag != ANY_TAG:
            raise ValueError(f"irecv tag must be >= 0 or ANY_TAG, got {tag}")
        self.src = int(src)
        self.tag = int(tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IrecvOp(src={self.src}, tag={self.tag})"


class WaitOp(Op):
    """Block until every request in ``requests`` has completed."""

    __slots__ = ("requests",)

    def __init__(self, requests: list):
        self.requests = list(requests)
        for request in self.requests:
            if not isinstance(request, Request):
                raise ValueError(f"WaitOp takes Requests, got {type(request).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        done = sum(1 for r in self.requests if r.matched)
        return f"WaitOp({done}/{len(self.requests)} matched)"
