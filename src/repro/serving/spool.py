"""File-spool front end for the render service (no network required).

The service is a library; this module gives it a process boundary that
works anywhere the test-suite does: a *spool directory*.  Clients drop
job request documents (``repro.serve-job/1``) into ``<spool>/jobs/``;
a serving process claims them (atomic rename into ``<spool>/work/``),
renders them through a shared :class:`~repro.serving.service.
RenderService`, streams every progress event as a
``repro.serve-event/1`` JSON line into ``<spool>/out/<job>.events.jsonl``,
and finishes with ``<spool>/out/<job>.result.json`` plus the final
image planes in ``<spool>/out/<job>.final.npz``.

Crash-survivability contract:

* **Claims are leases.**  Claiming renames ``jobs/<id>.json`` to
  ``work/<id>.a1.json`` (attempt 1) and drops a heartbeat-stamped
  ``work/<id>.a1.lease.json`` beside it, refreshed by a server-side
  heartbeat thread every ``heartbeat_s``.  A server that dies (SIGKILL,
  OOM, power loss) simply stops heartbeating.
* **Orphan reclamation.**  Any serving process — a restart, or a
  competitor sharing the spool — reclaims a work item whose lease is
  older than ``lease_s`` by atomically renaming it to the next attempt
  (``work/<id>.aN.json`` → ``work/<id>.a(N+1).json``); the rename has
  exactly one winner, so a job is never executed by two reclaimers at
  once.  After ``max_attempts`` expired leases the job is buried with a
  structured failure result instead of looping forever.
* **At most one result.**  ``<id>.result.json`` is created with an
  *exclusive* link-into-place: if a presumed-dead server was merely
  slow and finishes late, exactly one attempt's document lands and the
  loser is a no-op.  The final ``.npz`` may be rewritten by the loser —
  harmlessly, because renders are deterministic and bit-identical.
  Competing event streams from a slow loser can tear
  ``<id>.events.jsonl`` lines; readers drop a torn trailing record
  (see :func:`read_events`).
* **Whole-run resume.**  A reclaimed ``checkpoint-resume`` job (QoS
  ``lossless``) re-renders from ``work/<id>.ckpt/`` via
  :class:`~repro.cluster.recovery.DiskCheckpointStore` and lockstep
  resume — all ranks restart together, which is protocol-safe even on
  the multiprocessing substrate (unlike in-place respawn mid-run).
* **Graceful drain.**  On SIGTERM (or a ``stop_event``) the loop stops
  claiming, lets in-flight renders finish, and re-spools queued-but-
  unstarted claims back into ``jobs/`` so nothing is lost and nothing
  is double-rendered.

All document writes are atomic (temp file + ``os.replace``), so a
concurrent submitter/poller never observes a half-written document.
"""

from __future__ import annotations

import json
import os
import random
import re
import shutil
import signal
import threading
import time
import uuid
from typing import Any, Optional

import numpy as np

from ..cluster.faults import FaultPlan
from ..cluster.recovery import DiskCheckpointStore
from ..errors import ConfigurationError, JobCancelledError, OverloadError
from ..pipeline.config import RunConfig
from ..pipeline.session import RenderJob
from .service import DEFAULT_QOS, QOS_POLICIES, RenderService

__all__ = [
    "JOB_SCHEMA",
    "LEASE_SCHEMA",
    "RESULT_SCHEMA",
    "load_result",
    "read_events",
    "serve",
    "submit_job",
    "wait_for_result",
]

JOB_SCHEMA = "repro.serve-job/1"
RESULT_SCHEMA = "repro.serve-result/1"
LEASE_SCHEMA = "repro.serve-lease/1"

_JOBS, _WORK, _OUT = "jobs", "work", "out"

#: ``work/`` entry for attempt N of a job: ``<job_id>.aN.json``.
_WORK_RE = re.compile(r"^(?P<jid>.+)\.a(?P<n>\d+)\.json$")


def _ensure_layout(root: str) -> None:
    for sub in (_JOBS, _WORK, _OUT):
        os.makedirs(os.path.join(root, sub), exist_ok=True)


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _exclusive_write_text(path: str, text: str) -> bool:
    """Create ``path`` atomically with ``text``; False if it already
    exists.  This is the at-most-one-result primitive: the content
    appears fully formed (hard link of a complete temp file) and
    creation has exactly one winner across processes."""
    tmp = f"{path}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    try:
        os.link(tmp, path)
        return True
    except FileExistsError:
        return False
    except OSError:
        # Filesystem without hard links: O_EXCL create (content is not
        # atomic, but creation still has one winner).
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


# ---- client side ------------------------------------------------------------
def submit_job(
    root: str,
    *,
    session: str = "default",
    qos: str = DEFAULT_QOS,
    deltas: Optional[dict[str, Any]] = None,
    fault_plan: Optional[FaultPlan] = None,
    job_id: Optional[str] = None,
    deadline_s: Optional[float] = None,
) -> str:
    """Drop one job request into the spool; returns its job id.

    ``deadline_s`` is a wall-clock budget counted from the moment a
    server admits the job (not from submission — the spool may sit
    unserved indefinitely).
    """
    if qos not in QOS_POLICIES:
        raise ConfigurationError(
            f"unknown QoS class {qos!r}; available: {sorted(QOS_POLICIES)}"
        )
    _ensure_layout(root)
    if job_id is None:
        job_id = f"job-{uuid.uuid4().hex[:12]}"
    doc = {
        "schema": JOB_SCHEMA,
        "job_id": job_id,
        "session": session,
        "qos": qos,
        "deltas": dict(deltas or {}),
        "fault_plan": None if fault_plan is None else fault_plan.to_dict(),
        "deadline_s": deadline_s,
    }
    _atomic_write_text(
        os.path.join(root, _JOBS, f"{job_id}.json"), json.dumps(doc, indent=2)
    )
    return job_id


def load_result(root: str, job_id: str) -> Optional[dict[str, Any]]:
    """The job's ``repro.serve-result/1`` document, or ``None`` if pending."""
    path = os.path.join(root, _OUT, f"{job_id}.result.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def wait_for_result(
    root: str,
    job_id: str,
    *,
    timeout: float = 60.0,
    poll: float = 0.05,
    max_poll: float = 0.5,
) -> dict[str, Any]:
    """Poll the spool until the job's result document lands.

    The poll interval backs off exponentially from ``poll`` to
    ``max_poll`` with +/-20% jitter, so many waiters on one spool don't
    hammer the filesystem in lockstep while a long render runs.
    """
    deadline = time.monotonic() + timeout
    delay = poll
    while True:
        doc = load_result(root, job_id)
        if doc is not None:
            return doc
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(f"no result for {job_id!r} within {timeout}s")
        time.sleep(min(delay * random.uniform(0.8, 1.2), max_poll, remaining))
        delay = min(delay * 1.6, max_poll)


def read_events(root: str, job_id: str) -> list[dict[str, Any]]:
    """The job's streamed serve-event documents, in emission order.

    Tolerates a torn trailing record: a server killed (or still alive)
    mid-write leaves a truncated final line, which is dropped rather
    than raised — every *complete* line is still returned.  A malformed
    line anywhere else is real corruption and raises.
    """
    path = os.path.join(root, _OUT, f"{job_id}.events.jsonl")
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except FileNotFoundError:
        return []
    events: list[dict[str, Any]] = []
    last = len(lines) - 1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == last:
                break  # torn final record from an interrupted writer
            raise
    return events


# ---- leases -----------------------------------------------------------------
def _lease_path(root: str, job_id: str, attempt: int) -> str:
    return os.path.join(root, _WORK, f"{job_id}.a{attempt}.lease.json")


def _write_lease(root: str, job_id: str, attempt: int, lease_s: float) -> None:
    doc = {
        "schema": LEASE_SCHEMA,
        "job_id": job_id,
        "attempt": attempt,
        "owner_pid": os.getpid(),
        "heartbeat_at": time.time(),
        "lease_s": lease_s,
    }
    _atomic_write_text(_lease_path(root, job_id, attempt), json.dumps(doc))


def _read_lease(root: str, job_id: str, attempt: int) -> Optional[dict[str, Any]]:
    try:
        with open(_lease_path(root, job_id, attempt), encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _drop_leases(root: str, job_id: str) -> None:
    work_dir = os.path.join(root, _WORK)
    try:
        names = os.listdir(work_dir)
    except OSError:
        return
    for name in names:
        if name.startswith(f"{job_id}.a") and name.endswith(".lease.json"):
            try:
                os.remove(os.path.join(work_dir, name))
            except OSError:
                pass


def _cleanup_work(root: str, work_path: str, job_id: str) -> None:
    """Retire a finished work item: claim file, leases, checkpoints."""
    try:
        os.remove(work_path)
    except OSError:
        pass
    _drop_leases(root, job_id)
    shutil.rmtree(os.path.join(root, _WORK, f"{job_id}.ckpt"), ignore_errors=True)


def _respool(root: str, work_path: str, job_id: str) -> bool:
    """Return a claimed-but-unrendered job to ``jobs/`` (drain path).

    Checkpoints are kept: if the job had started an earlier attempt its
    next claim resumes from them.  Returns False when the work file is
    gone (another process already reclaimed or finished it).
    """
    try:
        os.replace(work_path, os.path.join(root, _JOBS, f"{job_id}.json"))
    except OSError:
        return False
    _drop_leases(root, job_id)
    return True


# ---- server side ------------------------------------------------------------
def _claim_next(root: str) -> Optional[tuple[str, str, int]]:
    """Atomically claim the oldest pending job file.

    Returns ``(work_path, job_id, attempt)`` — the claim renames
    ``jobs/<id>.json`` to ``work/<id>.a1.json`` so a crashed server's
    orphan carries its attempt number in the name.
    """
    jobs_dir = os.path.join(root, _JOBS)
    try:
        names = sorted(os.listdir(jobs_dir))
    except OSError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        job_id = name[: -len(".json")]
        src = os.path.join(jobs_dir, name)
        dst = os.path.join(root, _WORK, f"{job_id}.a1.json")
        try:
            os.replace(src, dst)
        except OSError:
            continue  # another server won the claim
        return dst, job_id, 1
    return None


def _reclaim_expired(
    root: str,
    *,
    lease_s: float,
    max_attempts: int,
    skip: "set[str] | frozenset[str]" = frozenset(),
) -> list[tuple[str, str, int]]:
    """Reclaim work items whose lease expired; returns new claims.

    Each reclaim renames ``work/<id>.aN.json`` to
    ``work/<id>.a(N+1).json`` — atomic, one winner — so competing
    reclaimers never both execute a job.  Items whose result already
    exists are retired; items past ``max_attempts`` are buried with a
    structured failure document.
    """
    work_dir = os.path.join(root, _WORK)
    try:
        names = sorted(os.listdir(work_dir))
    except OSError:
        return []
    claims: list[tuple[str, str, int]] = []
    now = time.time()
    for name in names:
        if name.endswith(".lease.json"):
            continue
        match = _WORK_RE.match(name)
        if match is None:
            continue
        job_id, attempt = match.group("jid"), int(match.group("n"))
        if job_id in skip:
            continue
        path = os.path.join(work_dir, name)
        if os.path.exists(os.path.join(root, _OUT, f"{job_id}.result.json")):
            # Finished, but the owner died before retiring the claim.
            _cleanup_work(root, path, job_id)
            continue
        lease = _read_lease(root, job_id, attempt)
        if lease is not None:
            age = now - float(lease.get("heartbeat_at", 0.0))
        else:
            # Crashed between claim-rename and first lease write: age
            # the bare work file by mtime.
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                continue
        if age < lease_s:
            continue
        if attempt >= max_attempts:
            doc = {
                "schema": RESULT_SCHEMA,
                "job_id": job_id,
                "ok": False,
                "error": "LeaseReclaimExhausted",
                "detail": (
                    f"lease expired on attempt {attempt}/{max_attempts}; "
                    "giving up"
                ),
                "attempt": attempt,
            }
            _exclusive_write_text(
                os.path.join(root, _OUT, f"{job_id}.result.json"),
                json.dumps(doc, indent=2),
            )
            _cleanup_work(root, path, job_id)
            continue
        new_path = os.path.join(work_dir, f"{job_id}.a{attempt + 1}.json")
        try:
            os.replace(path, new_path)
        except OSError:
            continue  # another reclaimer won
        try:
            os.remove(_lease_path(root, job_id, attempt))
        except OSError:
            pass
        claims.append((new_path, job_id, attempt + 1))
    return claims


def _stream_events(root: str, job_id: str, session: str, ticket) -> None:
    """Spool every progress event as one JSON line (blocks until closed)."""
    path = os.path.join(root, _OUT, f"{job_id}.events.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        for event in ticket.stream():
            fh.write(json.dumps(event.to_dict(job_id=job_id, session=session)))
            fh.write("\n")
            fh.flush()


def _job_writer(
    root: str,
    job_id: str,
    session: str,
    qos: str,
    ticket,
    work_path: Optional[str] = None,
    attempt: int = 1,
) -> None:
    """Writer thread body: stream events, result document, then retire.

    Ordering contract for pollers: by the time ``<job>.result.json``
    exists, ``<job>.events.jsonl`` is complete — the event stream only
    ends once the feed is closed, which happens strictly after the run
    finishes (or fails).  A *cancelled* job (service drain) writes no
    result at all, leaving its work file for the drain path to re-spool.
    """
    _stream_events(root, job_id, session, ticket)
    retired = _finish_job(root, job_id, session, qos, ticket, attempt=attempt)
    if retired and work_path is not None:
        _cleanup_work(root, work_path, job_id)


def _finish_job(
    root: str, job_id: str, session: str, qos: str, ticket, *, attempt: int = 1
) -> bool:
    """Write the job's final image and result document.

    Returns True when the job is *finished* (a result document exists —
    ours or a competing attempt's) and the claim should be retired;
    False for a cancelled job that must be re-spooled instead.
    """
    out_dir = os.path.join(root, _OUT)
    doc: dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "job_id": job_id,
        "session": session,
        "qos": qos,
        "attempt": attempt,
    }
    try:
        result = ticket.result()
    except JobCancelledError:
        # Service drain cancelled the queued job: no result document —
        # the job is not over, it goes back to the spool.
        return False
    except Exception as err:  # noqa: BLE001 - reported to the client
        doc.update({"ok": False, "error": type(err).__name__, "detail": str(err)})
    else:
        image_path = os.path.join(out_dir, f"{job_id}.final.npz")
        tmp = f"{image_path}.tmp-{os.getpid()}.npz"
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                intensity=result.final_image.intensity,
                opacity=result.final_image.opacity,
            )
        os.replace(tmp, image_path)
        timeline = result.timeline
        doc.update(
            {
                "ok": True,
                "outcome": timeline.meta.get("outcome") if timeline else None,
                "degraded": result.degraded,
                "recovered": result.recovered,
                "failed_ranks": result.failed_ranks,
                "backend": result.backend_name,
                "makespan": timeline.makespan if timeline else None,
                "coverage": ticket.feed.coverage if ticket.feed is not None else None,
                "events": len(ticket.feed.events) if ticket.feed is not None else 0,
                "image": image_path,
                "method": result.config.method,
                "label": result.config.label(),
            }
        )
    # Exclusive create: at most one attempt's result document ever
    # lands.  Losing means a presumed-dead competitor finished first —
    # fine, deterministic renders made the payloads identical.
    _exclusive_write_text(
        os.path.join(out_dir, f"{job_id}.result.json"), json.dumps(doc, indent=2)
    )
    return True


def serve(
    root: str,
    base_config: RunConfig,
    *,
    max_workers: int = 2,
    max_jobs: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    poll: float = 0.05,
    queue_limit: Optional[int] = None,
    shed_policy: str = "block",
    lease_s: float = 15.0,
    heartbeat_s: Optional[float] = None,
    max_attempts: int = 3,
    stop_event: Optional[threading.Event] = None,
) -> int:
    """Run a serve loop over the spool; returns the number of jobs served.

    Claims pending requests in name order (reclaiming expired leases
    first), multiplexes them through one :class:`RenderService`
    (sessions and QoS from each request, admission per
    ``queue_limit``/``shed_policy``), and exits after ``max_jobs`` jobs
    or once the spool has been idle — no pending or in-flight work —
    for ``idle_timeout`` seconds.  With neither bound the loop serves
    until SIGTERM/``stop_event``, then drains gracefully: in-flight
    renders finish, queued claims go back to ``jobs/``.
    """
    _ensure_layout(root)
    if heartbeat_s is None:
        heartbeat_s = max(lease_s / 3.0, 0.2)
    stop = stop_event if stop_event is not None else threading.Event()
    prev_handler = None
    if threading.current_thread() is threading.main_thread():
        try:
            prev_handler = signal.signal(
                signal.SIGTERM, lambda signum, frame: stop.set()
            )
        except (ValueError, OSError):  # pragma: no cover - exotic runtimes
            prev_handler = None

    served = 0
    inflight: dict[str, dict[str, Any]] = {}
    inflight_lock = threading.Lock()
    service = RenderService(
        base_config,
        max_workers=max_workers,
        queue_limit=queue_limit,
        shed_policy=shed_policy,
    )

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_s):
            with inflight_lock:
                live = [
                    (jid, meta["attempt"])
                    for jid, meta in inflight.items()
                    if not meta["ticket"].done()
                ]
            for jid, attempt in live:
                _write_lease(root, jid, attempt, lease_s)

    beater = threading.Thread(target=_heartbeat, name="spool-heartbeat", daemon=True)
    beater.start()

    def _launch(work_path: str, job_id: str, attempt: int) -> bool:
        """Admit one claimed work item; False if it could not start."""
        nonlocal served
        try:
            with open(work_path, encoding="utf-8") as fh:
                request = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return False  # claim raced away / torn write; reclaim later
        if request.get("schema") != JOB_SCHEMA:
            raise ConfigurationError(
                f"unsupported job schema {request.get('schema')!r} "
                f"in {work_path!r} (expected {JOB_SCHEMA!r})"
            )
        session = str(request.get("session", "default"))
        qos = str(request.get("qos", DEFAULT_QOS))
        deltas = dict(request.get("deltas") or {})
        plan_doc = request.get("fault_plan")
        store = None
        resume = None
        if QOS_POLICIES.get(qos) == "checkpoint-resume" or (
            deltas.get("recovery") == "checkpoint-resume"
        ):
            # Durable per-job store: a reclaimed attempt resumes the
            # whole run in lockstep from the highest loadable common
            # stage (compact=False keeps that stage loadable on every
            # rank).
            store = DiskCheckpointStore(
                os.path.join(root, _WORK, f"{job_id}.ckpt"),
                run_id=job_id,
                compact=False,
            )
            resume = "common"
        job = RenderJob(
            deltas=deltas,
            fault_plan=None if plan_doc is None else FaultPlan.from_dict(plan_doc),
            label=job_id,
            deadline_s=request.get("deadline_s"),
            checkpoint_store=store,
            resume=resume,
        )
        service.open_session(session, qos=qos)
        _write_lease(root, job_id, attempt, lease_s)
        try:
            ticket = service.submit(session, job)
        except OverloadError as err:
            # reject / shed-at-the-door: the client gets a typed
            # failure document instead of hanging.
            doc = {
                "schema": RESULT_SCHEMA,
                "job_id": job_id,
                "session": session,
                "qos": qos,
                "attempt": attempt,
                "ok": False,
                "error": type(err).__name__,
                "detail": str(err),
            }
            _exclusive_write_text(
                os.path.join(root, _OUT, f"{job_id}.result.json"),
                json.dumps(doc, indent=2),
            )
            _cleanup_work(root, work_path, job_id)
            return False
        except ConfigurationError:
            # Service closed under us (stop raced the claim): re-spool.
            _respool(root, work_path, job_id)
            return False
        writer = threading.Thread(
            target=_job_writer,
            args=(root, job_id, session, qos, ticket, work_path, attempt),
            name=f"spool-writer-{job_id}",
            daemon=True,
        )
        writer.start()
        with inflight_lock:
            inflight[job_id] = {
                "ticket": ticket,
                "work_path": work_path,
                "attempt": attempt,
                "writer": writer,
            }
        served += 1
        return True

    last_activity = time.monotonic()
    last_reclaim = -float("inf")
    try:
        while not stop.is_set():
            if max_jobs is not None and served >= max_jobs:
                break
            now = time.monotonic()
            if now - last_reclaim >= heartbeat_s:
                last_reclaim = now
                with inflight_lock:
                    own = set(inflight)
                for claim in _reclaim_expired(
                    root, lease_s=lease_s, max_attempts=max_attempts, skip=own
                ):
                    if _launch(*claim):
                        last_activity = time.monotonic()
                if stop.is_set() or (max_jobs is not None and served >= max_jobs):
                    continue
            claimed = _claim_next(root)
            if claimed is not None:
                if _launch(*claimed):
                    last_activity = time.monotonic()
                continue  # drain the backlog before sleeping
            with inflight_lock:
                busy = any(not m["ticket"].done() for m in inflight.values())
            if busy or service.pool.jobs_active > 0:
                last_activity = time.monotonic()
            elif (
                idle_timeout is not None
                and time.monotonic() - last_activity >= idle_timeout
            ):
                break
            time.sleep(poll)
    finally:
        interrupted = stop.is_set()
        stop.set()
        if not interrupted:
            # Natural exit (max_jobs / idle): every admitted job still
            # completes — only an interrupt cancels queued work.
            with inflight_lock:
                metas = list(inflight.items())
            for _, meta in metas:
                try:
                    meta["ticket"].result()
                except Exception:  # noqa: BLE001 - writer reports it
                    pass
        # Drain: running jobs finish, queued tickets come back cancelled.
        cancelled = service.close(drain=True)
        cancelled_ids = {t.job.label for t in cancelled}
        with inflight_lock:
            metas = list(inflight.items())
        # Writers observe the settled futures/closed feeds and exit;
        # join them so every events/result pair is complete (or the
        # cancelled job's work file is provably untouched) on return.
        for _, meta in metas:
            meta["writer"].join(timeout=30.0)
        for job_id, meta in metas:
            if job_id in cancelled_ids or meta["ticket"].state == "cancelled":
                served -= 1 if _respool(root, meta["work_path"], job_id) else 0
        beater.join(timeout=heartbeat_s + 1.0)
        if prev_handler is not None:
            try:
                signal.signal(signal.SIGTERM, prev_handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return served
