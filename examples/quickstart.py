#!/usr/bin/env python
"""Quickstart: render a volume on 8 simulated processors and composite.

Runs the full sort-last-sparse pipeline — partition, parallel render,
BSBRC binary-swap compositing, gather — on the simulated SP2, verifies
the result against the sequential oracle, writes the image as PGM, and
prints the compositing-phase statistics the paper's tables report.

Usage:
    python examples/quickstart.py [--full]

``--full`` uses the paper-scale engine volume (256x256x110, 384x384
image); the default is a quick small-scale run.
"""

import argparse
import sys

from repro import RunConfig, SortLastSystem
from repro.render.reference import luminance
from repro.volume.io import to_gray8, write_pgm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    parser.add_argument("--out", default="quickstart.pgm", help="output image path")
    args = parser.parse_args(argv)

    config = RunConfig(
        dataset="engine_low",
        method="bsbrc",
        num_ranks=8,
        image_size=384 if args.full else 128,
        volume_shape=None if args.full else (64, 64, 28),
        rot_x=20.0,
        rot_y=30.0,
    )
    print(f"Running sort-last-sparse pipeline: {config.label()}")

    result = SortLastSystem(config).run()

    # Verify the parallel composite against the sequential oracle.
    reference = result.reference_image()
    max_diff = result.final_image.max_abs_diff(reference)
    print(f"parallel vs sequential composite: max |diff| = {max_diff:.2e}")
    assert max_diff < 1e-9, "compositing mismatch!"

    stats = result.compositing.stats
    print("\nCompositing phase (simulated SP2, critical rank):")
    print(f"  T_comp   = {stats.t_comp * 1e3:8.2f} ms")
    print(f"  T_comm   = {stats.t_comm * 1e3:8.2f} ms")
    print(f"  T_total  = {stats.t_total * 1e3:8.2f} ms")
    print(f"  wait     = {stats.t_wait * 1e3:8.2f} ms  (synchronization skew)")
    print(f"  makespan = {stats.makespan * 1e3:8.2f} ms")
    print(f"  M_max    = {stats.mmax_bytes} bytes (max received per rank)")
    print(f"  over ops = {stats.counter_total('over')} pixels composited")

    print("\nPer-rank subimage sparsity (what the sparse methods exploit):")
    for rank, image in enumerate(result.subimages):
        rect = image.bounding_rect()
        print(
            f"  rank {rank}: nonblank {image.nonblank_count():6d}/{image.num_pixels}"
            f"  bounding rect {rect.height}x{rect.width}"
        )

    write_pgm(args.out, to_gray8(luminance(result.final_image), gain=2.0))
    print(f"\nFinal image written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
