"""The sort-last-sparse system: partition → render → composite → gather.

Two entry points:

* :func:`run_compositing` — the paper's measurement unit: given already
  rendered per-rank subimages, run just the compositing phase on the
  simulated cluster and return per-rank outcomes plus the timing stats
  that populate Tables 1-2.
* :class:`SortLastSystem` — the full pipeline driven by a
  :class:`~repro.pipeline.config.RunConfig`, executed end to end on a
  pluggable :class:`~repro.cluster.backend.Backend`: every rank renders
  its subvolume *inside* its rank program, composites, and the owned
  tiles are gathered to rank 0 over the same substrate.  The simulator
  and the multiprocessing backend produce bit-identical final images
  (tested); the result carries a unified
  :class:`~repro.cluster.run_timeline.RunTimeline` either way.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..cluster.backend import Backend, BackendRunResult, SimBackend, make_backend
from ..cluster.faults import FaultPlan, crash_phase_of, crash_stage_of
from ..cluster.model import MachineModel
from ..cluster.recovery import (
    RESUME_LATEST,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    RecoveryPolicy,
    RecoveryRuntime,
    RespawnPlan,
    run_outcome,
)
from ..cluster.progress import ProgressFeed
from ..cluster.run_timeline import (
    RunTimeline,
    progress_meta,
    schedule_meta,
    tile_latency_metrics,
)
from ..cluster.stats import RankStats, RunResult
from ..compositing.base import CompositeOutcome, Compositor
from ..compositing.registry import make_compositor
from ..errors import CompositingError, ConfigurationError, RankFailedError
from ..render.camera import Camera
from ..render.image import SubImage
from ..render.reference import composite_sequential
from ..volume.folded import FoldedPartition, folded_depth_order, refold_survivors
from ..volume.partition import PartitionPlan, depth_order
from .assemble import assemble_outcomes
from .config import RunConfig
from .phases import (
    GATHER_STAGE,
    build_scene,
    degraded_rank_program,
    pipeline_rank_program,
)

__all__ = [
    "CompositingRun",
    "SystemResult",
    "SortLastSystem",
    "run_compositing",
    "assemble_final",
    "validate_ownership",
    "GATHER_STAGE",
]


@dataclass
class CompositingRun:
    """Outcome of one compositing phase."""

    compositor: Compositor
    outcomes: list[CompositeOutcome]
    stats: RunResult

    @property
    def method(self) -> str:
        return self.compositor.name


def run_compositing(
    images: Sequence[SubImage],
    method: str | Compositor,
    plan: PartitionPlan | FoldedPartition,
    view_dir: np.ndarray,
    model: MachineModel,
    *,
    network=None,
    engine: str = "event",
    **method_options: Any,
) -> CompositingRun:
    """Composite pre-rendered subimages on the simulated cluster.

    ``images[r]`` is rank ``r``'s rendered subimage; inputs are copied,
    not mutated.  Returns outcomes plus the :class:`RunResult` whose
    totals are exactly the compositing-phase ``T_comp``/``T_comm``.

    Passing a :class:`~repro.volume.folded.FoldedPartition` (any rank
    count) automatically wraps swap-structured methods in a
    :class:`~repro.compositing.folding.FoldedCompositor`.

    ``network`` routes message arrivals through a
    :class:`~repro.cluster.model.Network` topology (``None`` = the
    paper's flat link); ``engine`` picks the simulator scheduler
    (``"event"`` min-heap, or ``"lockstep"`` for the round-robin
    reference — identical results on the flat network).
    """
    num_ranks = len(images)
    if plan.num_ranks != num_ranks:
        raise CompositingError(
            f"{num_ranks} images supplied for a {plan.num_ranks}-rank plan"
        )
    compositor = (
        make_compositor(method, **method_options) if isinstance(method, str) else method
    )
    if isinstance(plan, FoldedPartition):
        from ..compositing.folding import FoldedCompositor

        if not isinstance(compositor, FoldedCompositor):
            compositor = FoldedCompositor(compositor)
    view_dir = np.asarray(view_dir, dtype=np.float64)
    outcomes: list[CompositeOutcome | None] = [None] * num_ranks

    async def program(ctx):
        local = images[ctx.rank].copy()
        outcomes[ctx.rank] = await compositor.run(ctx, local, plan, view_dir)

    result = SimBackend().run(
        num_ranks, program, model=model, network=network, engine=engine
    )
    assert all(o is not None for o in outcomes)
    return CompositingRun(
        compositor=compositor,
        outcomes=outcomes,  # type: ignore[arg-type]
        stats=result.to_run_result(),
    )


def validate_ownership(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> None:
    """Check that rank ownerships partition the ``height x width`` image
    exactly once.

    Methods where one rank ends with the whole image (binary tree) only
    pass when a single outcome is supplied — empty ownerships contribute
    nothing.
    """
    seen = np.zeros(height * width, dtype=np.int32)
    for outcome in outcomes:
        if outcome.owned_rect is not None:
            rect = outcome.owned_rect
            if rect.is_empty:
                continue
            flat = (
                np.arange(rect.y0, rect.y1)[:, None] * width
                + np.arange(rect.x0, rect.x1)[None, :]
            ).ravel()
            seen[flat] += 1
        else:
            seen[outcome.owned_indices] += 1  # type: ignore[index]
    if not np.all(seen == 1):
        missing = int((seen == 0).sum())
        dup = int((seen > 1).sum())
        raise CompositingError(
            f"ownership is not a partition: {missing} unowned, {dup} multiply-owned pixels"
        )


def assemble_final(
    outcomes: Sequence[CompositeOutcome], height: int, width: int
) -> SubImage:
    """Merge every rank's owned pixels into the display image (see
    :func:`~repro.pipeline.assemble.assemble_tiles` for the one scatter
    routine behind every backend path)."""
    return assemble_outcomes(outcomes, height, width)


def _strip_stage(rank_stats: Sequence[RankStats], stage: int) -> list[RankStats]:
    """Per-rank stats with one stage bucket removed (shared buckets)."""
    out: list[RankStats] = []
    for rs in rank_stats:
        copy = RankStats(rank=rs.rank, events=list(rs.events))
        for key, bucket in rs.stages.items():
            if key != stage:
                copy.stages[key] = bucket
        out.append(copy)
    return out


def _compositing_stats(backend_result: BackendRunResult) -> RunResult:
    """Compositing-phase view of a unified pipeline run.

    Drops the :data:`GATHER_STAGE` bucket.  On the simulator the
    filtered makespan is exact: rendering charges no virtual time, and a
    rank's clock equals its accumulated ``comp + comm + wait``, so the
    max filtered ``elapsed_time`` equals the makespan of a
    compositing-only run.
    """
    stats = _strip_stage(backend_result.rank_stats, GATHER_STAGE)
    makespan = max((rs.elapsed_time for rs in stats), default=0.0)
    return RunResult(
        num_ranks=backend_result.num_ranks,
        returns=[None] * backend_result.num_ranks,
        rank_stats=stats,
        makespan=makespan,
    )


@dataclass
class SystemResult:
    """Everything the full pipeline produces."""

    config: RunConfig
    plan: PartitionPlan | FoldedPartition
    camera: Camera
    subimages: list[SubImage]
    compositing: CompositingRun
    final_image: SubImage
    #: Short name of the backend that executed the run ("sim"/"mp"/"mpi").
    backend_name: str = "sim"
    #: Unified run timeline (all phases, including the gather stage).
    timeline: Optional[RunTimeline] = field(default=None, repr=False)
    #: True when ranks were lost and the run re-folded onto survivors;
    #: the final image is partial-but-valid and the timeline carries the
    #: fault/degradation events.
    degraded: bool = False
    #: Original ranks lost before compositing (degraded runs only).
    failed_ranks: list[int] = field(default_factory=list)
    #: True when a failure was absorbed *losslessly* — a checkpoint
    #: resume or an in-place worker respawn produced the full-fidelity
    #: image (contrast ``degraded``, which drops the failed rank's data).
    recovered: bool = False

    def reference_image(self) -> SubImage:
        """Sequential depth-order composite of the rendered subimages."""
        if isinstance(self.plan, FoldedPartition):
            order = folded_depth_order(self.plan, self.camera.view_dir)
        else:
            order = depth_order(self.plan, self.camera.view_dir)
        return composite_sequential(self.subimages, order)


class SortLastSystem:
    """Full sort-last-sparse pipeline on a pluggable execution backend."""

    def __init__(self, config: RunConfig):
        self.config = config

    def run(
        self,
        *,
        gather_final: bool = True,
        backend: str | Backend | None = None,
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        degrade: bool = True,
        recovery: "str | RecoveryPolicy | None" = None,
        schedule_policy=None,
        progress: Optional[ProgressFeed] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        resume: "None | int | str" = None,
    ) -> SystemResult:
        """Execute partition → render → composite (→ gather & assemble).

        ``backend`` overrides the config's ``backend`` field; pass a
        short name ("sim", "mp", "mpi") or a
        :class:`~repro.cluster.backend.Backend` instance.  ``trace``
        records the simulator's event trace into the timeline.

        ``fault_plan`` injects the plan's faults through the shared
        protocol layer (identically on every backend).  What happens
        when a rank is then lost is decided by one recovery policy on
        the lattice ``abort < degrade < respawn < checkpoint-resume``
        (see :mod:`repro.cluster.recovery`): ``recovery`` overrides the
        config's ``recovery`` field; the legacy ``degrade=False``
        maps to ``abort``.  Stronger policies fall back down the lattice
        when their mechanism does not apply — a respawn whose replay
        would break the message protocol (or whose budget ran out)
        degrades; a crash that cannot degrade re-raises the typed error.
        Every recovery decision lands as a structured event in the
        result's timeline.

        ``schedule_policy`` (a
        :class:`~repro.cluster.schedule_policy.SchedulePolicy`,
        simulator only) hands the engine's event-ordering freedom to
        the schedule explorer.  The *same* policy instance drives every
        engine run of this call — including degraded/resumed recovery
        re-runs — so its decision log covers the whole execution and
        replays it end to end; the policy name, decision count, and
        trace path (when arranged) land in the timeline meta.

        ``progress`` (a :class:`~repro.cluster.progress.ProgressFeed`,
        simulator only, one feed per run) streams a bit-exact partial
        frame after every completed exchange stage / completed tile and
        a flagged ``final`` event; the feed is closed when this call
        returns (or raises).  Recovery re-runs reset the feed's
        per-attempt accounting, so coverage stays monotone across a
        degraded restart.  Feeds cannot cross the mp/mpi process
        boundary, so real transports reject one up front.

        ``checkpoint_store`` (requires a resume-capable ``recovery``
        policy) replaces the run-private store with a caller-owned one —
        neither cleared nor deleted when this call returns.  This is the
        whole-run-resume hook: a serving process can keep a job's
        :class:`~repro.cluster.recovery.DiskCheckpointStore` in a
        crash-survivable location, and a *different* process can later
        rerun the job against the same store with ``resume="common"``,
        restoring the highest stage every rank checkpointed (verified
        loadable) and replaying only the tail — on the simulator *and*
        on mp, since all ranks restart together the lockstep replay is
        always protocol-consistent.  ``resume`` may also be an explicit
        stage int; ``None`` starts fresh (snapshots still saved).
        """
        cfg = self.config
        if backend is None:
            backend = cfg.backend
        engine = make_backend(backend) if isinstance(backend, str) else backend
        if progress is not None and engine.name != "sim":
            raise ConfigurationError(
                "live progress feeds require the simulator backend (all ranks "
                f"share one process); backend {engine.name!r} cannot share a "
                "feed across process boundaries"
            )
        if recovery is not None:
            policy = RecoveryPolicy.resolve(recovery, respawn_budget=cfg.respawn_budget)
        elif not degrade:
            policy = RecoveryPolicy.resolve("abort")
        else:
            policy = RecoveryPolicy.resolve(cfg.recovery, respawn_budget=cfg.respawn_budget)

        # Host-side scene build: the result mirrors what every rank
        # derives (memoized, and inherited by forked mp workers).
        scene = build_scene(cfg)

        if checkpoint_store is not None:
            if not policy.allows_resume:
                raise ConfigurationError(
                    "checkpoint_store requires a resume-capable recovery "
                    f"policy (checkpoint-resume), got {policy.name!r}"
                )
            store, cleanup = checkpoint_store, None  # caller owns lifecycle
        else:
            store, cleanup = self._make_store(engine, policy)
        resume_stage: Optional[int] = None
        if store is not None and resume is not None:
            resume_stage = (
                store.resumable_stage(cfg.num_ranks)
                if resume == "common"
                else int(resume)
            )
        runtime = (
            RecoveryRuntime(store=store, resume=resume_stage)
            if store is not None
            else None
        )
        args: tuple = (cfg, gather_final)
        if progress is not None:
            args = (cfg, gather_final, fault_plan, runtime, progress)
        elif fault_plan is not None or runtime is not None:
            args = (cfg, gather_final, fault_plan, runtime)
        respawn = None
        if (
            engine.name == "mp"
            and policy.allows_respawn
            and not isinstance(scene.plan, FoldedPartition)
        ):
            # Folded plans resend their fold messages on replay, which a
            # peer that already consumed them cannot absorb — in-place
            # respawn is gated to plain bisection plans.
            respawn = RespawnPlan(
                budget=policy.respawn_budget,
                args=(
                    cfg,
                    gather_final,
                    None,  # never re-arm the fault plan in a replacement
                    RecoveryRuntime(store, RESUME_LATEST) if store is not None else None,
                ),
                store=store,
            )
        try:
            try:
                backend_result = engine.run(
                    cfg.num_ranks,
                    pipeline_rank_program,
                    args,
                    model=cfg.machine,
                    trace=trace,
                    timeout=cfg.comm_timeout,
                    respawn=respawn,
                    heartbeat=cfg.heartbeat_interval,
                    network=cfg.build_network(),
                    schedule_policy=schedule_policy,
                )
            except RankFailedError as err:
                return self._recover(
                    engine, scene, err, policy, store,
                    gather_final=gather_final, trace=trace,
                    schedule_policy=schedule_policy, progress=progress,
                )
            return self._build_result(
                engine, scene, backend_result, gather_final=gather_final,
                schedule_policy=schedule_policy, progress=progress,
            )
        finally:
            if progress is not None:
                progress.close()
            if cleanup is not None:
                cleanup()

    def _make_store(
        self, engine: Backend, policy: RecoveryPolicy
    ) -> "tuple[Optional[CheckpointStore], Optional[Callable[[], None]]]":
        """Checkpoint store matched to the substrate (plus its cleanup).

        Only ``checkpoint-resume`` pays for snapshots.  The simulator
        runs all ranks in one process (memory store); multiprocessing
        crosses process boundaries (disk store under ``REPRO_CACHE_DIR``
        or a private temp dir removed after the run).
        """
        if not policy.allows_resume:
            return None, None
        if engine.name == "sim":
            store: CheckpointStore = MemoryCheckpointStore()
            return store, store.clear
        if engine.name == "mp":
            root = os.environ.get("REPRO_CACHE_DIR", "").strip()
            tmp_root = None
            if not root:
                tmp_root = tempfile.mkdtemp(prefix="repro-ckpt-")
                root = tmp_root
            disk = DiskCheckpointStore(root)

            def _cleanup() -> None:
                disk.clear()
                if tmp_root is not None:
                    shutil.rmtree(tmp_root, ignore_errors=True)

            return disk, _cleanup
        return None, None  # MPI: no mid-job respawn/resume substrate yet

    def _recover(
        self,
        engine: Backend,
        scene,
        err: RankFailedError,
        policy: RecoveryPolicy,
        store: Optional[CheckpointStore],
        *,
        gather_final: bool,
        trace: bool,
        schedule_policy=None,
        progress: Optional[ProgressFeed] = None,
    ) -> SystemResult:
        """Walk down the policy lattice after an unrecovered rank failure.

        Order: lockstep checkpoint-resume (simulator), then refold-based
        degradation, then re-raise (abort).  The mp backend's in-place
        respawn already ran inside the supervisor; reaching here means
        it was refused or exhausted, and ``err.events`` carries its
        audit trail.
        """
        cfg = self.config
        phase = crash_phase_of(err)
        stage = crash_stage_of(err)
        if (
            policy.allows_resume
            and engine.name in ("sim", "mp")
            and store is not None
        ):
            # Lockstep resume needs a stage checkpointed by *every* rank;
            # when the crash hit before one exists the lossless fallback
            # is a clean full replay (resume=None) — still bit-identical,
            # it just starts from stage 0.  Unlike in-place respawn this
            # is protocol-safe on mp too: every rank restarts together,
            # so the replayed exchange sequence is self-consistent.
            resume = store.resumable_stage(cfg.num_ranks)
            return self._run_resumed(
                engine, scene, err, store, resume,
                gather_final=gather_final, trace=trace, policy=policy,
                schedule_policy=schedule_policy, progress=progress,
            )
        degradable = (
            policy.allows_degrade
            and (
                phase in ("render", "composite")
                or (phase is None and stage is not None and stage != GATHER_STAGE)
            )
            and isinstance(scene.plan, PartitionPlan)
            and scene.plan.num_ranks >= 2
        )
        if not degradable:
            raise err
        return self._run_degraded(
            engine, scene, err,
            gather_final=gather_final, trace=trace, phase=phase, stage=stage,
            schedule_policy=schedule_policy, progress=progress,
        )

    def _run_resumed(
        self,
        engine: Backend,
        scene,
        err: RankFailedError,
        store: CheckpointStore,
        resume: Optional[int],
        *,
        gather_final: bool,
        trace: bool,
        policy: RecoveryPolicy,
        schedule_policy=None,
        progress: Optional[ProgressFeed] = None,
    ) -> SystemResult:
        """Lockstep checkpoint-resume on the simulator.

        Every rank restores the *common* minimum checkpointed stage and
        replays from there — all ranks move together, so the replayed
        exchange sequence is exactly the fault-free tail and the final
        image (and the deterministic byte/message counters) land
        bit-identical to a clean run.  ``resume=None`` means no stage is
        checkpointed everywhere yet: the replay starts from scratch,
        which is equally lossless.  The fault plan is not re-armed.
        """
        cfg = self.config
        events = list(err.events) + [
            {
                "event": "detected",
                "fault": "crash",
                "rank": err.rank,
                "phase": crash_phase_of(err),
                "stage": crash_stage_of(err),
                "backend": engine.name,
            },
            {
                "event": "recovery",
                "policy": policy.name,
                "action": "checkpoint-resume",
                "failed_ranks": [err.rank],
                "resume_stage": resume,
                "backend": engine.name,
            },
        ]
        if progress is not None:
            progress.reset_attempt()
        resume_args: tuple = (cfg, gather_final, None, RecoveryRuntime(store, resume))
        if progress is not None:
            resume_args = resume_args + (progress,)
        backend_result = engine.run(
            cfg.num_ranks,
            pipeline_rank_program,
            resume_args,
            model=cfg.machine,
            trace=trace,
            timeout=cfg.comm_timeout,
            network=cfg.build_network(),
            schedule_policy=schedule_policy,
        )
        return self._build_result(
            engine,
            scene,
            backend_result,
            gather_final=gather_final,
            extra_events=events,
            recovered=True,
            schedule_policy=schedule_policy,
            progress=progress,
        )

    def _run_degraded(
        self, engine: Backend, scene, err: RankFailedError, *, gather_final: bool,
        trace: bool, phase: Optional[str] = "render", stage: Optional[int] = None,
        schedule_policy=None, progress: Optional[ProgressFeed] = None,
    ) -> SystemResult:
        """Re-fold onto the survivors of a rank loss and rerun the
        pipeline clean (no fault injection) on the smaller folded
        machine.  Works for render- *and* composite-phase losses: the
        survivors re-render their merged blocks either way."""
        cfg = self.config
        failed = [err.rank]
        compositor = make_compositor(cfg.method, **cfg.method_options)
        pairs_of = getattr(compositor, "refold_pairs", None)
        pairs = pairs_of(scene.plan.num_ranks) if pairs_of is not None else None
        folded, rank_map = refold_survivors(scene.plan, failed, pairs=pairs)
        detected: dict[str, Any] = {
            "event": "detected",
            "fault": "crash",
            "rank": err.rank,
            "backend": engine.name,
        }
        if phase is not None:
            detected["phase"] = phase
        if stage is not None:
            detected["stage"] = stage
        orchestrator_events = list(err.events) + [
            detected,
            {
                "event": "recovery",
                "policy": "degrade",
                "action": "degrade",
                "failed_ranks": failed,
                "backend": engine.name,
            },
            {
                "event": "degraded",
                "failed_ranks": failed,
                "survivor_ranks": rank_map,
                "core_ranks": folded.core_ranks,
            },
        ]
        if progress is not None:
            progress.reset_attempt()
        degraded_args: tuple = (cfg, folded, gather_final)
        if progress is not None:
            degraded_args = degraded_args + (progress,)
        backend_result = engine.run(
            folded.num_ranks,
            degraded_rank_program,
            degraded_args,
            model=cfg.machine,
            trace=trace,
            timeout=cfg.comm_timeout,
            network=cfg.build_network(),
            schedule_policy=schedule_policy,
        )
        degraded_scene = type(scene)(
            scene.volume, scene.transfer, scene.camera, folded
        )
        return self._build_result(
            engine,
            degraded_scene,
            backend_result,
            gather_final=gather_final,
            degraded=True,
            failed_ranks=failed,
            extra_events=orchestrator_events,
            schedule_policy=schedule_policy,
            progress=progress,
        )

    def _build_result(
        self,
        engine: Backend,
        scene,
        backend_result: BackendRunResult,
        *,
        gather_final: bool,
        degraded: bool = False,
        failed_ranks: Optional[list[int]] = None,
        extra_events: Optional[list[dict]] = None,
        recovered: bool = False,
        schedule_policy=None,
        progress: Optional[ProgressFeed] = None,
    ) -> SystemResult:
        cfg = self.config
        subimages = [ret[0] for ret in backend_result.returns]
        outcomes = [ret[1] for ret in backend_result.returns]
        # An mp run that respawned a worker in place succeeded *because*
        # of recovery; surface that even though no exception reached us.
        if any(
            ev.get("event") == "respawn" and ev.get("action") == "restart"
            for ev in backend_result.events
        ):
            recovered = True

        compositor = make_compositor(cfg.method, **cfg.method_options)
        if isinstance(scene.plan, FoldedPartition):
            from ..compositing.folding import FoldedCompositor

            compositor = FoldedCompositor(compositor)
        compositing = CompositingRun(
            compositor=compositor,
            outcomes=outcomes,
            stats=_compositing_stats(backend_result),
        )

        if gather_final:
            final = backend_result.returns[0][2]
            assert final is not None
        else:
            final = assemble_final(outcomes, scene.camera.height, scene.camera.width)

        meta = {
            "dataset": cfg.dataset,
            "method": cfg.method,
            "num_ranks": cfg.num_ranks,
            "image_size": cfg.image_size,
            "machine": cfg.machine.name,
            "topology": cfg.topology,
            "renderer": cfg.renderer,
            "gather_final": gather_final,
            "degraded": degraded,
            "recovered": recovered,
            "outcome": run_outcome(degraded=degraded, recovered=recovered),
            "failed_ranks": list(failed_ranks or []),
        }
        if progress is not None:
            # The assembled display image, flagged with the declared
            # outcome: a degraded partial frame streams marked, never
            # silently.  Stamped at the run's makespan.
            progress.emit_final(
                image=final,
                degraded=degraded,
                outcome=meta["outcome"],
                t=max(
                    (rs.elapsed_time for rs in backend_result.rank_stats),
                    default=0.0,
                ),
            )
        meta.update(schedule_meta(schedule_policy))
        meta.update(progress_meta(progress))
        timeline = backend_result.timeline(meta=meta, events=extra_events)
        latencies = tile_latency_metrics(timeline.events)
        if latencies:
            timeline.meta.update(latencies)
        return SystemResult(
            config=cfg,
            plan=scene.plan,
            camera=scene.camera,
            subimages=subimages,
            compositing=compositing,
            final_image=final,
            backend_name=engine.name,
            timeline=timeline,
            degraded=degraded,
            failed_ranks=list(failed_ranks or []),
            recovered=recovered,
        )
