"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing substrate failures
(:class:`SimulationError`), malformed wire data (:class:`WireFormatError`),
and configuration mistakes (:class:`ConfigurationError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "LivelockError",
    "RankFailedError",
    "WireFormatError",
    "PartitionError",
    "RenderError",
    "CompositingError",
    "ServingError",
    "OverloadError",
    "JobRejectedError",
    "JobShedError",
    "JobCancelledError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid run/machine/camera configuration was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event cluster simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Every live rank is blocked on communication and no pair matches.

    Carries a human-readable summary of what each rank was blocked on so
    that protocol bugs in compositing methods are diagnosable.  When the
    detecting substrate knows them, ``phase`` (pipeline phase), ``stage``
    (compositing stage bucket) and ``peer`` (the rank being waited on)
    pinpoint the blockage without reading the timeline.  The simulator
    also supplies ``last_progress`` — each blocked rank's virtual time of
    last forward progress (when it posted the operation it is stuck in) —
    so large-P hangs are diagnosable without a full trace: the rank with
    the *earliest* last-progress time is usually the root cause.

    Under schedule exploration (:mod:`repro.cluster.schedule_policy`)
    the simulator also stamps ``sched_policy`` (the policy name),
    ``sched_trace`` (path of the saved decision trace, when one was
    arranged) and ``sched_decisions`` (the compact in-memory decision
    list) — so a hung interleaving is reproducible from the error alone
    via ``--replay-trace``.
    """

    def __init__(
        self,
        blocked: dict[int, str],
        *,
        phase: str | None = None,
        stage: int | None = None,
        peer: int | None = None,
        last_progress: dict[int, float] | None = None,
        sched_policy: str | None = None,
        sched_trace: str | None = None,
        sched_decisions: list[dict] | None = None,
    ):
        self.blocked = dict(blocked)
        self.phase = phase
        self.stage = stage
        self.peer = peer
        self.last_progress = dict(last_progress) if last_progress else {}
        self.sched_policy = sched_policy
        self.sched_trace = sched_trace
        self.sched_decisions = list(sched_decisions) if sched_decisions else []
        detail = "; ".join(
            f"rank {r}: {what}"
            + (
                f" (idle since t={self.last_progress[r]:.6f})"
                if r in self.last_progress
                else ""
            )
            for r, what in sorted(blocked.items())
        )
        where = []
        if phase is not None:
            where.append(f"phase {phase!r}")
        if stage is not None:
            where.append(f"stage {stage}")
        if peer is not None:
            where.append(f"waiting on rank {peer}")
        if sched_policy is not None:
            where.append(f"schedule policy {sched_policy!r}")
            if sched_trace is not None:
                where.append(f"trace {sched_trace}")
            elif self.sched_decisions:
                compact = ",".join(
                    f"{d.get('kind', '?')[:4]}:{d.get('choice')}"
                    for d in self.sched_decisions
                )
                where.append(f"decisions [{compact}]")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(
            f"cluster deadlocked ({len(blocked)} ranks blocked): {detail}{suffix}"
        )


class LivelockError(SimulationError):
    """An explored interleaving exceeded its event budget without
    completing — the schedule explorer's livelock classification (the
    per-policy budget is far below the simulator's own ``max_steps``
    runaway valve)."""


class RankFailedError(SimulationError):
    """A rank's program raised (or its process died).

    In-process substrates (the simulator) attach the live exception as
    ``original``.  Cross-process substrates cannot ship the exception
    object reliably, so they carry ``original_type`` (the exception
    class name) and ``traceback_text`` (the worker's formatted
    traceback) instead.  ``events`` holds any structured fault events
    the failed rank recorded before dying; ``fault_phase`` /
    ``fault_stage`` name the pipeline phase and compositing stage of an
    injected crash (``None`` for organic failures).
    """

    def __init__(
        self,
        rank: int,
        original: BaseException | None = None,
        *,
        original_type: str | None = None,
        traceback_text: str | None = None,
        detail: str | None = None,
        events: list | None = None,
        fault_phase: str | None = None,
        fault_stage: int | None = None,
    ):
        self.rank = rank
        self.original = original
        self.original_type = original_type or (
            type(original).__name__ if original is not None else None
        )
        self.traceback_text = traceback_text
        self.events = list(events) if events else []
        self.fault_phase = fault_phase
        self.fault_stage = fault_stage
        if detail is None:
            detail = (
                repr(original)
                if original is not None
                else "died without reporting a result"
            )
        super().__init__(f"rank {rank} failed: {detail}")


class WireFormatError(ReproError, ValueError):
    """A serialized compositing message failed to parse or validate."""


class PartitionError(ReproError, ValueError):
    """A volume could not be partitioned as requested."""


class RenderError(ReproError, RuntimeError):
    """The ray caster was given inconsistent geometry."""


class CompositingError(ReproError, RuntimeError):
    """A compositing method violated one of its invariants."""


class ServingError(ReproError, RuntimeError):
    """Base class for render-service admission and lifecycle errors."""


class OverloadError(ServingError):
    """The service's bounded job queue is full.

    Base of the two overload dispositions: a job the service turned away
    at the door (:class:`JobRejectedError`) and a queued job evicted to
    make room for a higher-QoS arrival (:class:`JobShedError`).  Both
    carry the shedding ``policy`` that made the call so clients and the
    spool's result documents can report it.
    """

    def __init__(self, message: str, *, policy: str | None = None,
                 queue_limit: int | None = None):
        self.policy = policy
        self.queue_limit = queue_limit
        super().__init__(message)


class JobRejectedError(OverloadError):
    """Admission was refused: the queue is full and the policy says no.

    Raised synchronously from ``RenderService.submit`` under the
    ``reject`` policy (and under ``shed-lowest-qos`` when no queued job
    outranks the arrival) — the caller never receives a ticket, so
    nothing can hang.
    """


class JobShedError(OverloadError):
    """A queued job was evicted to admit a higher-QoS arrival.

    Delivered *through the shed job's ticket future* (never raised at
    the submitter), so a client blocked in ``ticket.result()`` wakes
    with this error instead of hanging forever.
    """


class JobCancelledError(ServingError):
    """A queued job was cancelled by service shutdown/drain.

    Resolved onto the ticket future of every admitted-but-unstarted job
    when the service closes, so abandoned tickets never leak an
    unresolved future.  The spool's drain path re-spools these jobs
    instead of writing a result document.
    """


class DeadlineExceededError(ServingError):
    """A job ran past its ``deadline_s`` budget.

    Queued jobs past deadline are dropped before execution; running jobs
    are checked at the engines' checkpoint/tile boundaries via the
    progress-feed hook.  ``elapsed`` and ``deadline_s`` (seconds) say by
    how much.
    """

    def __init__(self, message: str, *, deadline_s: float | None = None,
                 elapsed: float | None = None):
        self.deadline_s = deadline_s
        self.elapsed = elapsed
        super().__init__(message)
