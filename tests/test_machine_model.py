"""Unit tests for the machine cost model."""

import pytest

from repro.cluster.model import IDEALIZED, PRESETS, SP2, SP2_FAST_NET, SP2_SLOW_NET, MachineModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineModel(name="bad", ts=-1.0, tc=0, to=0, tencode=0, tbound=0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineModel(name="bad", ts=float("nan"), tc=0, to=0, tencode=0, tbound=0)

    def test_zero_model_valid(self):
        model = MachineModel(name="zero", ts=0, tc=0, to=0, tencode=0, tbound=0)
        assert model.message_time(100) == 0.0


class TestCosts:
    def test_message_time_linear(self):
        model = MachineModel(name="m", ts=1.0, tc=0.5, to=0, tencode=0, tbound=0)
        assert model.message_time(0) == 1.0
        assert model.message_time(10) == 6.0

    def test_transfer_time_no_startup(self):
        model = MachineModel(name="m", ts=1.0, tc=0.5, to=0, tencode=0, tbound=0)
        assert model.transfer_time(10) == 5.0

    def test_over_time(self):
        assert SP2.over_time(1000) == pytest.approx(1000 * SP2.to)

    def test_encode_time(self):
        assert SP2.encode_time(1000) == pytest.approx(1000 * SP2.tencode)

    def test_bound_time(self):
        assert SP2.bound_time(1000) == pytest.approx(1000 * SP2.tbound)

    def test_pack_time(self):
        assert SP2.pack_time(1 << 20) == pytest.approx((1 << 20) * SP2.tpack)

    @pytest.mark.parametrize(
        "method", ["message_time", "transfer_time", "over_time", "encode_time",
                   "bound_time", "pack_time"]
    )
    def test_negative_counts_rejected(self, method):
        with pytest.raises(ConfigurationError):
            getattr(SP2, method)(-1)


class TestPresets:
    def test_presets_registered(self):
        for model in (SP2, SP2_FAST_NET, SP2_SLOW_NET, IDEALIZED):
            assert PRESETS[model.name] is model

    def test_sp2_calibration_regime(self):
        # BS at P=2 on 384^2 should land near the paper's ~327 ms total.
        num_pixels = 384 * 384
        t_comp = SP2.over_time(num_pixels // 2)
        t_comm = SP2.message_time(16 * (num_pixels // 2))
        total_ms = (t_comp + t_comm) * 1e3
        assert 280 <= total_ms <= 380

    def test_fast_net_is_faster(self):
        assert SP2_FAST_NET.tc < SP2.tc < SP2_SLOW_NET.tc

    def test_idealized_is_free(self):
        assert IDEALIZED.message_time(10**9) == 0.0
        assert IDEALIZED.over_time(10**9) == 0.0


class TestOverrides:
    def test_with_overrides_replaces(self):
        variant = SP2.with_overrides(to=1e-6, name="custom")
        assert variant.to == 1e-6
        assert variant.ts == SP2.ts
        assert variant.name == "custom"

    def test_with_overrides_keeps_original(self):
        SP2.with_overrides(to=1e-6)
        assert SP2.to == 4.0e-6

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SP2.ts = 0.0  # type: ignore[misc]
