"""The render service: N sessions multiplexed over one bounded pool.

:class:`RenderService` is the concurrency layer above
:class:`~repro.pipeline.session.RenderSession`:

* **One shared :class:`WorkerPool`** (bounded threads) executes every
  session's jobs.  The simulator substrate releases the GIL poorly but
  models time, not wall time, so threads are the right grain: the pool
  bounds *admission* (how many renders are in flight), which is the
  resource the service actually rations.
* **Admission control** — a bounded job queue (``queue_limit``) in
  front of the pool with a shedding-policy lattice
  ``block < reject < shed-lowest-qos`` (:data:`SHED_POLICIES`): under
  ``block`` a full queue back-pressures the submitter; under ``reject``
  the arrival is turned away with a typed
  :class:`~repro.errors.JobRejectedError`; under ``shed-lowest-qos``
  the lowest-priority *queued* job is evicted (its ticket future
  resolves with :class:`~repro.errors.JobShedError` — a shed client
  never hangs) to admit a higher-QoS arrival.  Every overload decision
  lands as a structured ``repro.serve-event/1`` document in
  :attr:`RenderService.events`.
* **Per-job deadlines** — ``deadline_s`` (on the job or the submit
  call) starts the clock at admission: queued-past-deadline jobs are
  dropped before execution, and running sim jobs are aborted at the
  engines' checkpoint/tile boundaries via the progress-feed hook —
  both surfacing a typed :class:`~repro.errors.DeadlineExceededError`.
* **Per-session serialization** — jobs within one session run in
  submission order on the session's warm backend; different sessions
  run concurrently up to the pool bound.
* **Per-session QoS on the recovery lattice** — opening a session picks
  a quality class that maps onto the existing recovery policies
  (:data:`QOS_POLICIES`): a ``degrade``-QoS session's job that loses a
  rank comes back *fast* as a flagged partial frame
  (``result.degraded``), a ``lossless`` session pays for checkpoints
  and resumes bit-identically, a ``strict`` session surfaces the typed
  error.  A job may still override its own ``recovery`` explicitly.
  The same classes double as the shedding priority
  (:data:`QOS_SHED_PRIORITY`).
* **Per-job perf scoping** — each job runs under its own
  :class:`repro.perf.PerfRegistry` scope, so concurrent sessions never
  interleave counters; the report lands on the ticket.
* **Progressive delivery** — sim-substrate jobs get a
  :class:`~repro.cluster.progress.ProgressFeed` automatically;
  :meth:`JobTicket.stream` yields bit-exact partial frames while the
  render is still in flight.
* **Graceful drain** — :meth:`RenderService.close` refuses new
  admissions, finishes in-flight jobs, and *cancels* queued ones
  (futures resolved with :class:`~repro.errors.JobCancelledError`,
  tickets returned so a spool front end can re-spool them); with
  ``drain=False`` running jobs are abandoned after a bounded thread
  join instead of awaited.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import InvalidStateError
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional

from .. import perf
from ..cluster.progress import SERVE_EVENT_SCHEMA, ProgressEvent, ProgressFeed
from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    JobCancelledError,
    JobRejectedError,
    JobShedError,
)
from ..pipeline.config import RunConfig
from ..pipeline.session import RenderJob, RenderSession
from ..pipeline.system import SystemResult

__all__ = [
    "DEFAULT_QOS",
    "JobTicket",
    "QOS_POLICIES",
    "QOS_SHED_PRIORITY",
    "RenderService",
    "SHED_POLICIES",
    "SessionHandle",
    "WorkerPool",
]

#: QoS class -> recovery policy on the lattice
#: ``abort < degrade < respawn < checkpoint-resume``.
QOS_POLICIES = {
    "strict": "abort",  # fail loudly; never serve a partial frame
    "degrade": "degrade",  # flagged partial frame fast, never an error
    "available": "respawn",  # replace lost workers in place (mp)
    "lossless": "checkpoint-resume",  # bit-identical recovery, slower
}

DEFAULT_QOS = "degrade"

#: Shedding priority per QoS class — *lower sheds first* under
#: ``shed-lowest-qos``.  ``degrade`` tolerates partial frames (the
#: cheapest client contract, so the first to go under overload);
#: ``lossless`` pays for checkpoints and is protected the hardest.
QOS_SHED_PRIORITY = {
    "degrade": 0,
    "available": 1,
    "strict": 2,
    "lossless": 3,
}

#: The shedding-policy lattice, gentlest first: ``block`` back-pressures
#: the submitter, ``reject`` turns arrivals away at the door,
#: ``shed-lowest-qos`` additionally evicts queued low-QoS work to admit
#: higher-QoS arrivals (falling back to reject among equals).
SHED_POLICIES = ("block", "reject", "shed-lowest-qos")


class WorkerPool:
    """Bounded shared executor for render jobs.

    A thin, countable wrapper over :class:`ThreadPoolExecutor`: at most
    ``max_workers`` renders progress at once; excess submissions queue
    in FIFO order.  One pool is shared by every session of a service —
    and can also back :func:`repro.experiments.harness.run_grid`, so
    batch sweeps ride the same admission control as interactive jobs.
    """

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 worker, got {max_workers}")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-render"
        )
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_active = 0
        self.peak_active = 0

    def submit(self, fn, *args: Any, **kwargs: Any) -> Future:
        with self._lock:
            self.jobs_submitted += 1

        def _tracked() -> Any:
            with self._lock:
                self.jobs_active += 1
                self.peak_active = max(self.peak_active, self.jobs_active)
            try:
                return fn(*args, **kwargs)
            finally:
                with self._lock:
                    self.jobs_active -= 1

        return self._executor.submit(_tracked)

    def shutdown(
        self,
        wait: bool = True,
        *,
        timeout: Optional[float] = None,
        cancel_futures: bool = False,
    ) -> bool:
        """Stop the executor; returns True when every thread exited.

        ``timeout`` bounds the total join wall time (``wait`` is then
        implied): a wedged render cannot hang the closing process
        forever.  ``cancel_futures`` drops work the executor has not
        started yet (the abandon path — the service resolves the
        corresponding tickets itself, so nothing leaks).
        """
        self._executor.shutdown(
            wait=wait and timeout is None, cancel_futures=cancel_futures
        )
        if timeout is None:
            return True
        deadline = time.monotonic() + timeout
        for thread in list(self._executor._threads):
            thread.join(max(0.0, deadline - time.monotonic()))
        return not any(t.is_alive() for t in self._executor._threads)


@dataclass
class SessionHandle:
    """One client session registered with the service."""

    name: str
    session: RenderSession
    qos: str
    #: Serializes this session's jobs (its backend is single-tenant).
    lock: threading.Lock = field(default_factory=threading.Lock)
    jobs_submitted: int = 0


class JobTicket:
    """Handle for one submitted job: stream progress, then collect."""

    _ids = itertools.count(1)

    def __init__(
        self,
        session: str,
        job: RenderJob,
        feed: Optional[ProgressFeed],
        qos: str,
        deadline_s: Optional[float] = None,
    ):
        self.job_id = f"job-{next(self._ids)}"
        self.session = session
        self.job = job
        self.feed = feed
        self.qos = qos
        self.future: Future = Future()
        #: The job's scoped perf report, set on completion.
        self.perf_report: Optional[dict] = None
        #: Admission-time wall reference for the deadline clock.
        self.submitted_at = time.monotonic()
        self.deadline_s = deadline_s
        self.deadline_at = (
            None if deadline_s is None else self.submitted_at + float(deadline_s)
        )
        #: Lifecycle: queued -> running -> (done) | shed | cancelled.
        self.state = "queued"

    def stream(self, timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield the job's progress events as they happen (see
        :meth:`~repro.cluster.progress.ProgressFeed.stream`)."""
        if self.feed is None:
            return iter(())
        return self.feed.stream(timeout)

    def result(self, timeout: Optional[float] = None) -> SystemResult:
        """Block for the job's :class:`SystemResult` (raises what it raised)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()

    # ---- internal ----------------------------------------------------------
    def _resolve(self, *, result=None, exc: Optional[BaseException] = None) -> bool:
        """Settle the future exactly once (races with the worker thread
        are benign: first writer wins, the loser is a no-op)."""
        try:
            if exc is not None:
                self.future.set_exception(exc)
            else:
                self.future.set_result(result)
            return True
        except InvalidStateError:
            return False

    def _abandon(self, exc: BaseException, state: str) -> None:
        """Resolve + close the stream so no consumer of this ticket —
        ``result()``, ``stream()``, or a spool writer — can hang."""
        self.state = state
        self._resolve(exc=exc)
        if self.feed is not None:
            self.feed.close()


class RenderService:
    """Multiplex concurrent render sessions over one bounded pool.

    ``queue_limit`` bounds the *waiting* line (jobs admitted but not yet
    executing); ``None`` keeps the legacy unbounded queue.  When the
    line is full, ``shed_policy`` (one of :data:`SHED_POLICIES`) decides
    between back-pressure, rejection, and QoS-based eviction.
    """

    def __init__(
        self,
        base_config: RunConfig,
        *,
        max_workers: int = 2,
        pool: Optional[WorkerPool] = None,
        queue_limit: Optional[int] = None,
        shed_policy: str = "block",
    ):
        if shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {shed_policy!r}; "
                f"available: {list(SHED_POLICIES)}"
            )
        if queue_limit is not None and queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1 (or None for unbounded), got {queue_limit}"
            )
        self.base_config = base_config
        self.pool = pool if pool is not None else WorkerPool(max_workers)
        self.queue_limit = queue_limit
        self.shed_policy = shed_policy
        self._sessions: dict[str, SessionHandle] = {}
        # Reentrant: _admit holds it while _record re-enters for the
        # structured shed/reject event.
        self._lock = threading.RLock()
        self._admission = threading.Condition(self._lock)
        self._queued: list[JobTicket] = []
        self._running: set[JobTicket] = set()
        self._closed = False
        #: Structured ``repro.serve-event/1`` control documents, one per
        #: overload/deadline/drain decision (no pixel payloads).
        self.events: list[dict] = []
        self.shed_jobs = 0
        self.rejected_jobs = 0
        self.deadline_jobs = 0
        self.cancelled_jobs = 0

    # ---- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet executing."""
        with self._lock:
            return len(self._queued)

    @property
    def active_jobs(self) -> int:
        with self._lock:
            return len(self._running)

    def _record(self, kind: str, ticket: Optional[JobTicket] = None, **extra) -> dict:
        doc: dict[str, Any] = {
            "schema": SERVE_EVENT_SCHEMA,
            "kind": kind,
            "policy": self.shed_policy,
            "queue_limit": self.queue_limit,
            "t_wall": time.time(),
        }
        if ticket is not None:
            doc.update(
                job_id=ticket.job_id,
                session=ticket.session,
                qos=ticket.qos,
                label=ticket.job.label,
            )
        doc.update(extra)
        with self._lock:
            self.events.append(doc)
        return doc

    # ---- sessions ----------------------------------------------------------
    def open_session(
        self,
        name: str,
        *,
        qos: str = DEFAULT_QOS,
        config: Optional[RunConfig] = None,
        backend: Optional[str] = None,
    ) -> SessionHandle:
        """Register a session; idempotent for an existing ``name``/``qos``."""
        if qos not in QOS_POLICIES:
            raise ConfigurationError(
                f"unknown QoS class {qos!r}; available: {sorted(QOS_POLICIES)}"
            )
        with self._lock:
            if self._closed:
                raise ConfigurationError("render service is shut down")
            found = self._sessions.get(name)
            if found is not None:
                if found.qos != qos:
                    raise ConfigurationError(
                        f"session {name!r} already open with QoS {found.qos!r}"
                    )
                return found
            cfg = config if config is not None else self.base_config
            handle = SessionHandle(
                name=name,
                session=RenderSession(cfg, backend=backend, name=name),
                qos=qos,
            )
            self._sessions[name] = handle
            return handle

    def close_session(self, name: str) -> None:
        with self._lock:
            handle = self._sessions.pop(name, None)
        if handle is not None:
            handle.session.close()

    # ---- admission ---------------------------------------------------------
    def _shed_victim(self, priority: int) -> Optional[JobTicket]:
        """The queued ticket to evict for an arrival at ``priority``:
        lowest shed-priority strictly below the arrival's, newest among
        equals (the most recently queued low-QoS job loses the least
        invested waiting time).  ``None`` when nobody outranks."""
        victim: Optional[JobTicket] = None
        victim_pri = priority
        for ticket in self._queued:
            pri = QOS_SHED_PRIORITY[ticket.qos]
            if pri < victim_pri or (victim is not None and pri == victim_pri):
                victim, victim_pri = ticket, pri
        return victim

    def _admit(self, ticket: JobTicket) -> None:
        """Apply the shedding policy; on return the ticket is queued.

        Raises :class:`JobRejectedError` when the policy turns the
        arrival away.  Must be called with the admission lock held.
        """
        if self.queue_limit is None:
            self._queued.append(ticket)
            return
        while len(self._queued) >= self.queue_limit:
            if self.shed_policy == "block":
                # Back-pressure: park the submitter until the queue
                # drains (a worker starting a job frees a slot).
                self._admission.wait()
                if self._closed:
                    raise ConfigurationError("render service is shut down")
                continue
            if self.shed_policy == "shed-lowest-qos":
                victim = self._shed_victim(QOS_SHED_PRIORITY[ticket.qos])
                if victim is not None:
                    self._queued.remove(victim)
                    self.shed_jobs += 1
                    victim._abandon(
                        JobShedError(
                            f"job {victim.job_id} ({victim.qos}) shed for an "
                            f"arriving {ticket.qos} job (queue full at "
                            f"{self.queue_limit})",
                            policy=self.shed_policy,
                            queue_limit=self.queue_limit,
                        ),
                        "shed",
                    )
                    self._record(
                        "shed", victim,
                        shed_for=ticket.job_id, shed_for_qos=ticket.qos,
                    )
                    continue
            # "reject", or "shed-lowest-qos" with nobody to outrank.
            self.rejected_jobs += 1
            self._record("rejected", ticket)
            raise JobRejectedError(
                f"job queue full ({len(self._queued)}/{self.queue_limit}) "
                f"and policy {self.shed_policy!r} refuses the "
                f"{ticket.qos}-QoS arrival",
                policy=self.shed_policy,
                queue_limit=self.queue_limit,
            )
        self._queued.append(ticket)

    # ---- jobs --------------------------------------------------------------
    def submit(
        self,
        session: str = "default",
        job: Optional[RenderJob] = None,
        *,
        stream: bool = True,
        deadline_s: Optional[float] = None,
        **deltas: Any,
    ) -> JobTicket:
        """Queue one job on ``session`` (opened with default QoS if new).

        ``stream=True`` (sim substrate only) attaches a fresh
        :class:`ProgressFeed` when the job does not carry one.  The
        session's QoS supplies the recovery policy unless the job sets
        its own.  ``deadline_s`` (or the job's own) arms the wall-clock
        deadline from this call.  Returns a :class:`JobTicket` once the
        job is admitted — immediately unless the queue is full under the
        ``block`` policy; a full queue under ``reject``/``shed-lowest-qos``
        raises :class:`~repro.errors.JobRejectedError` instead.
        """
        with self._lock:
            handle = self._sessions.get(session)
        if handle is None:
            handle = self.open_session(session)
        if job is None:
            job = RenderJob(deltas=deltas)
        elif deltas:
            raise ConfigurationError("pass either a RenderJob or config deltas, not both")
        if job.recovery is None:
            job = replace(job, recovery=QOS_POLICIES[handle.qos])
        feed = job.progress
        if feed is None and stream and handle.session.backend.name == "sim":
            feed = ProgressFeed()
            job = replace(job, progress=feed)
        if deadline_s is None:
            deadline_s = job.deadline_s
        ticket = JobTicket(session, job, feed, handle.qos, deadline_s=deadline_s)
        with self._admission:
            if self._closed:
                raise ConfigurationError("render service is shut down")
            self._admit(ticket)
        handle.jobs_submitted += 1
        try:
            self.pool.submit(self._execute, handle, ticket)
        except RuntimeError as err:
            # Admission raced a concurrent close past the pool's
            # shutdown: settle the ticket and refuse, don't leak it.
            with self._admission:
                if ticket in self._queued:
                    self._queued.remove(ticket)
            ticket._abandon(
                JobCancelledError(f"job {ticket.job_id} cancelled: service closing"),
                "cancelled",
            )
            raise ConfigurationError("render service is shut down") from err
        return ticket

    def _execute(self, handle: SessionHandle, ticket: JobTicket) -> None:
        with self._admission:
            if ticket.state != "queued":
                return  # shed or cancelled while waiting; future settled
            ticket.state = "running"
            try:
                self._queued.remove(ticket)
            except ValueError:
                pass
            self._running.add(ticket)
            self._admission.notify_all()  # a queue slot freed up
        try:
            if (
                ticket.deadline_at is not None
                and time.monotonic() >= ticket.deadline_at
            ):
                # Queued past its deadline: drop before execution.
                raise DeadlineExceededError(
                    f"job {ticket.job_id} spent its {ticket.deadline_s}s "
                    "deadline in the queue; dropped before execution",
                    deadline_s=ticket.deadline_s,
                    elapsed=time.monotonic() - ticket.submitted_at,
                )
            if ticket.feed is not None and ticket.deadline_at is not None:
                # Running-job enforcement: the engines emit at exactly
                # their checkpoint/tile boundaries, so the feed's
                # deadline hook aborts there.
                ticket.feed.set_deadline(ticket.deadline_at, ticket.deadline_s)
            with handle.lock:  # one job at a time per session
                with perf.scope() as registry:
                    result = handle.session.submit(ticket.job)
                ticket.perf_report = registry.report()
        except BaseException as err:  # noqa: BLE001 - future carries it
            if isinstance(err, DeadlineExceededError):
                with self._lock:
                    self.deadline_jobs += 1
                self._record(
                    "deadline", ticket,
                    deadline_s=ticket.deadline_s, detail=str(err),
                )
            ticket._resolve(exc=err)
        else:
            ticket._resolve(result=result)
        finally:
            # The system layer closes the feed after a run; close again
            # here (idempotent) so a pre-run failure can't hang a stream.
            if ticket.feed is not None:
                ticket.feed.close()
            with self._admission:
                self._running.discard(ticket)
                self._admission.notify_all()

    # ---- lifecycle ---------------------------------------------------------
    def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> list[JobTicket]:
        """Stop the service; returns the queued tickets it cancelled.

        New admissions are refused immediately (blocked ``block``-policy
        submitters wake and raise).  Queued-but-unstarted jobs are
        *cancelled* — their futures resolve with
        :class:`~repro.errors.JobCancelledError` and the tickets are
        returned so a spool front end can re-spool them.  In-flight jobs
        are awaited to completion under ``drain=True`` (bounded by
        ``timeout`` when given); under ``drain=False`` the pool is
        abandoned after a bounded thread join (default 10 s) and any
        ticket still unresolved is settled with
        :class:`~repro.errors.JobCancelledError` so nothing leaks.
        """
        with self._admission:
            already_closed = self._closed
            self._closed = True
            cancelled = list(self._queued)
            self._queued.clear()
            for ticket in cancelled:
                # Inside the lock: a pool worker reaching _execute now
                # sees the state flip and skips, instead of racing the
                # cancellation below.
                ticket.state = "cancelled"
            handles = list(self._sessions.values())
            self._sessions.clear()
            self._admission.notify_all()  # wake blocked submitters
        for ticket in cancelled:
            self.cancelled_jobs += 1
            ticket._abandon(
                JobCancelledError(
                    f"job {ticket.job_id} cancelled: service closing "
                    f"({'drain' if drain else 'abandon'})"
                ),
                "cancelled",
            )
            self._record("cancelled", ticket, drain=drain)
        if not already_closed:
            self._record("drain", None, drain=drain, cancelled=len(cancelled))
        if drain:
            self.pool.shutdown(wait=True, timeout=timeout)
        else:
            joined = self.pool.shutdown(
                wait=True,
                timeout=10.0 if timeout is None else timeout,
                cancel_futures=True,
            )
            # Anything still unresolved after the bounded join (a wedged
            # render, or a pool item cancel_futures dropped before
            # _execute ran) must not leak an unsettled future.
            leftovers = list(self._running) if not joined else []
            with self._lock:
                pending = [t for t in leftovers if not t.future.done()]
            for ticket in pending:
                ticket._abandon(
                    JobCancelledError(
                        f"job {ticket.job_id} abandoned: service closed "
                        "without drain"
                    ),
                    "cancelled",
                )
        for handle in handles:
            handle.session.close()
        return cancelled

    def shutdown(self, wait: bool = True) -> None:
        """Back-compat alias: ``close(drain=wait)``."""
        self.close(drain=wait)

    def __enter__(self) -> "RenderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=True)
