"""Name → compositor factory registry.

Methods are addressable two ways:

* **paper names and baselines** — the four paper methods (``bs``,
  ``bsbr``, ``bslc``, ``bsbrc``) are thin aliases over the schedule ×
  codec engine (:data:`COMBO_ALIASES`); the related-work baselines
  (``direct``, ``direct-async``, ``tree``, ``pipeline``, ``bslcv``)
  keep their dedicated classes;
* **schedule × codec combos** — ``"<schedule>:<codec>"`` strings such
  as ``radix-k:rect-rle`` or ``sectioned:raw``, instantiated through
  :class:`~repro.compositing.engine.ScheduledCompositor`.  Any
  compatible pair from :data:`SCHEDULES` × :data:`CODECS` works.

Factories accept the method's keyword options (``split_policy``,
``section``, ``radix``, ``charge_pack``) so ablations route through the
same interface; unknown names get a did-you-mean suggestion.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Callable

from ..errors import ConfigurationError
from .base import Compositor

__all__ = [
    "register",
    "make_compositor",
    "make_scheduled",
    "make_tile_routed",
    "available_methods",
    "method_catalog",
    "validate_method",
    "PAPER_METHODS",
    "COMBO_ALIASES",
    "SCHEDULES",
    "CODECS",
    "TILE_ROUTED",
]

_REGISTRY: dict[str, Callable[..., Compositor]] = {}
_DESCRIPTIONS: dict[str, str] = {}

#: The four methods evaluated in the paper's tables, in table order.
PAPER_METHODS = ("bs", "bsbr", "bslc", "bsbrc")

#: The paper methods as schedule × codec coordinates.
COMBO_ALIASES: dict[str, tuple[str, str]] = {
    "bs": ("binary-swap", "raw"),
    "bsbr": ("binary-swap", "rect"),
    "bslc": ("sectioned", "rle"),
    "bsbrc": ("binary-swap", "rect-rle"),
}


def _load_planes():
    from .codec import BoundingRectCodec, RawCodec, RectRLECodec, RunLengthCodec
    from .schedule import (
        BinarySwapSchedule,
        DirectSendSchedule,
        RadixKSchedule,
        SectionedSchedule,
    )

    schedules = {
        "binary-swap": BinarySwapSchedule,
        "sectioned": SectionedSchedule,
        "direct-send": DirectSendSchedule,
        "radix-k": RadixKSchedule,
    }
    codecs = {
        "raw": RawCodec,
        "rect": BoundingRectCodec,
        "rle": RunLengthCodec,
        "rect-rle": RectRLECodec,
    }
    return schedules, codecs


SCHEDULES, CODECS = _load_planes()

#: Pseudo-schedule name selecting the asynchronous tile-routed engine
#: (``"tile-routed:<codec>"``); it is an execution model peer to
#: :class:`~repro.compositing.engine.ScheduledCompositor`, not an entry
#: of :data:`SCHEDULES`.
TILE_ROUTED = "tile-routed"


def register(name: str, factory: Callable[..., Compositor], *, description: str = "") -> None:
    """Register a compositor factory under ``name`` (lowercase)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"compositor {name!r} already registered")
    _REGISTRY[key] = factory
    if description:
        _DESCRIPTIONS[key] = description


def _suggestion(name: str, candidates) -> str:
    close = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.5)
    return f" — did you mean {close[0]!r}?" if close else ""


def _compatible_codecs(schedule_name: str) -> list[str]:
    kind = SCHEDULES[schedule_name].part_kind
    return sorted(c for c, cls in CODECS.items() if kind in cls.supports)


def _tile_codecs() -> list[str]:
    return sorted(c for c, cls in CODECS.items() if "rect" in cls.supports)


def _resolve_tile_routed(codec_name: str) -> None:
    """Validate a ``tile-routed:<codec>`` spec (raises on failure)."""
    if codec_name not in CODECS:
        raise ConfigurationError(
            f"unknown codec {codec_name!r}; available codecs: {sorted(CODECS)}"
            + _suggestion(codec_name, CODECS)
        )
    if "rect" not in CODECS[codec_name].supports:
        raise ConfigurationError(
            f"codec {codec_name!r} cannot carry the rect-shaped tiles of "
            f"the tile-routed engine; compatible codecs: {_tile_codecs()}"
        )


def _resolve_combo(schedule_name: str, codec_name: str) -> None:
    """Validate a combo's names and compatibility (raises on failure)."""
    if schedule_name not in SCHEDULES:
        candidates = sorted(SCHEDULES) + [TILE_ROUTED]
        raise ConfigurationError(
            f"unknown schedule {schedule_name!r}; available schedules: "
            f"{candidates}" + _suggestion(schedule_name, candidates)
        )
    if codec_name not in CODECS:
        raise ConfigurationError(
            f"unknown codec {codec_name!r}; available codecs: {sorted(CODECS)}"
            + _suggestion(codec_name, CODECS)
        )
    if SCHEDULES[schedule_name].part_kind not in CODECS[codec_name].supports:
        raise ConfigurationError(
            f"codec {codec_name!r} cannot carry the "
            f"{SCHEDULES[schedule_name].part_kind!r} parts of schedule "
            f"{schedule_name!r}; compatible codecs: "
            f"{_compatible_codecs(schedule_name)}"
        )


def make_scheduled(
    schedule_name: str, codec_name: str, *, name: str | None = None, **options
) -> Compositor:
    """Build a :class:`ScheduledCompositor` for ``schedule × codec``.

    Options route by introspection: ``charge_pack`` to the engine, the
    rest to the schedule constructor (codecs take no options).
    """
    from .engine import ScheduledCompositor

    _resolve_combo(schedule_name, codec_name)
    schedule_cls = SCHEDULES[schedule_name]
    engine_opts = {}
    if "charge_pack" in options:
        engine_opts["charge_pack"] = options.pop("charge_pack")
    accepted = set(inspect.signature(schedule_cls.__init__).parameters) - {"self"}
    unknown = set(options) - accepted
    if unknown:
        raise ConfigurationError(
            f"method {schedule_name}:{codec_name} does not accept option(s) "
            f"{sorted(unknown)}; schedule options: {sorted(accepted)}, "
            f"engine options: ['charge_pack']"
        )
    return ScheduledCompositor(
        schedule_cls(**options), CODECS[codec_name](), name=name, **engine_opts
    )


def make_tile_routed(
    codec_name: str, *, name: str | None = None, **options
) -> Compositor:
    """Build a :class:`~repro.compositing.tile_engine.TileRoutedCompositor`.

    Engine options: ``tile`` (tile edge length) and ``charge_pack``.
    """
    from .tile_engine import TileRoutedCompositor

    _resolve_tile_routed(codec_name)
    accepted = {"tile", "charge_pack"}
    unknown = set(options) - accepted
    if unknown:
        raise ConfigurationError(
            f"method {TILE_ROUTED}:{codec_name} does not accept option(s) "
            f"{sorted(unknown)}; engine options: {sorted(accepted)}"
        )
    return TileRoutedCompositor(CODECS[codec_name](), name=name, **options)


def make_compositor(name: str, **options) -> Compositor:
    """Instantiate a method by registry name or ``schedule:codec`` spec."""
    key = name.lower()
    if ":" in key:
        schedule_name, _, codec_name = key.partition(":")
        if schedule_name == TILE_ROUTED:
            return make_tile_routed(codec_name, **options)
        return make_scheduled(schedule_name, codec_name, **options)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown compositing method {name!r}; available: "
            f"{available_methods()}" + _suggestion(key, available_methods())
        )
    return factory(**options)


def validate_method(name: str) -> None:
    """Check that ``name`` resolves, without instantiating anything."""
    key = name.lower()
    if ":" in key:
        schedule_name, _, codec_name = key.partition(":")
        if schedule_name == TILE_ROUTED:
            _resolve_tile_routed(codec_name)
            return
        _resolve_combo(schedule_name, codec_name)
        return
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown compositing method {name!r}; available: "
            f"{available_methods()}" + _suggestion(key, available_methods())
        )


def _combo_names() -> list[str]:
    return [
        f"{s}:{c}"
        for s in sorted(SCHEDULES)
        for c in sorted(CODECS)
        if SCHEDULES[s].part_kind in CODECS[c].supports
    ] + [f"{TILE_ROUTED}:{c}" for c in _tile_codecs()]


def available_methods() -> list[str]:
    """Every addressable method: registered names plus valid combos."""
    return sorted(set(_REGISTRY) | set(_combo_names()))


def method_catalog() -> dict[str, str]:
    """Method name → one-line description (drives the CLI help text)."""
    catalog = dict(_DESCRIPTIONS)
    for combo in _combo_names():
        schedule_name, _, codec_name = combo.partition(":")
        if schedule_name == TILE_ROUTED:
            catalog[combo] = (
                "asynchronous tile routing, no stage barriers; "
                f"{CODECS[codec_name].description}"
            )
            continue
        catalog[combo] = (
            f"{SCHEDULES[schedule_name].description}; "
            f"{CODECS[codec_name].description}"
        )
    for key in _REGISTRY:
        catalog.setdefault(key, "")
    return dict(sorted(catalog.items()))


def _alias_factory(alias: str, schedule_name: str, codec_name: str):
    def build(**options) -> Compositor:
        return make_scheduled(schedule_name, codec_name, name=alias, **options)

    return build


def _register_builtins() -> None:
    for alias, (schedule_name, codec_name) in COMBO_ALIASES.items():
        register(
            alias,
            _alias_factory(alias, schedule_name, codec_name),
            description=(
                f"paper method (= {schedule_name}:{codec_name}): "
                f"{CODECS[codec_name].description}"
            ),
        )

    from .bslc_value import BinarySwapValueCompression

    register(
        "bslcv",
        BinarySwapValueCompression,
        description="BSLC variant with value run-length coding",
    )

    from .baselines import (
        BinaryTreeCompression,
        DirectSend,
        DirectSendAsync,
        ParallelPipeline,
    )

    register(
        "direct",
        DirectSend,
        description="direct send of row strips, blocking XOR rounds",
    )
    register(
        "direct-async",
        DirectSendAsync,
        description="direct send of row strips, non-blocking",
    )
    register(
        "tree",
        BinaryTreeCompression,
        description="binary-tree reduction to a single root",
    )
    register(
        "pipeline",
        ParallelPipeline,
        description="ring pipeline with dual accumulators",
    )


_register_builtins()
