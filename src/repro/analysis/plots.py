"""ASCII line plots for the paper's Figures 8-11.

The figures plot compositing time (ms) against processor count for the
BSBR, BSLC and BSBRC methods on one dataset.  Matplotlib is not
available offline, so the harness renders terminal-friendly ASCII charts
that preserve what the figures communicate: which curve is lowest and
where curves cross.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_plot", "series_summary"]

_MARKERS = "ox+*#%@&"


def ascii_line_plot(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    *,
    title: str = "",
    y_label: str = "",
    height: int = 18,
    width: int = 72,
) -> str:
    """Plot named series sharing categorical x positions.

    ``series[name][i]`` is the y value at ``x_labels[i]``.  Values are
    linearly mapped onto a ``height`` x ``width`` character grid; each
    series gets a marker from :data:`_MARKERS`.
    """
    names = list(series)
    if not names:
        raise ValueError("no series to plot")
    npoints = len(x_labels)
    for name in names:
        if len(series[name]) != npoints:
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, expected {npoints}"
            )
    if npoints < 1:
        raise ValueError("need at least one x position")

    values = [v for name in names for v in series[name]]
    y_min = min(values)
    y_max = max(values)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    xs = (
        [width // 2]
        if npoints == 1
        else [round(i * (width - 1) / (npoints - 1)) for i in range(npoints)]
    )

    def y_to_row(v: float) -> int:
        frac = (v - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    for si, name in enumerate(names):
        marker = _MARKERS[si % len(_MARKERS)]
        pts = [(xs[i], y_to_row(series[name][i])) for i in range(npoints)]
        for (x0, r0), (x1, r1) in zip(pts, pts[1:]):
            steps = max(abs(x1 - x0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                x = round(x0 + (x1 - x0) * s / steps)
                r = round(r0 + (r1 - r0) * s / steps)
                if grid[r][x] == " ":
                    grid[r][x] = "."
        for x, r in pts:
            grid[r][x] = marker

    out: list[str] = []
    if title:
        out.append(title)
    label_w = 10
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{y_max:.4g}"
        elif row_idx == height - 1:
            label = f"{y_min:.4g}"
        else:
            label = ""
        out.append(label.rjust(label_w) + " |" + "".join(row))
    out.append(" " * label_w + " +" + "-" * width)
    x_axis = [" "] * width
    for i, x in enumerate(xs):
        text = str(x_labels[i])
        start = min(max(0, x - len(text) // 2), width - len(text))
        for j, ch in enumerate(text):
            x_axis[start + j] = ch
    out.append(" " * label_w + "  " + "".join(x_axis))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(names)
    )
    out.append(" " * label_w + "  legend: " + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(out)


def series_summary(series: Mapping[str, Sequence[float]], x_labels: Sequence[object]) -> str:
    """Compact numeric companion to the plot (exact values)."""
    names = list(series)
    header = ["P"] + names
    rows = []
    for i, x in enumerate(x_labels):
        rows.append([str(x)] + [f"{series[n][i]:.4g}" for n in names])
    widths = [max(len(h), *(len(r[c]) for r in rows)) for c, h in enumerate(header)]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)
