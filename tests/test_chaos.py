"""Chaos suite: seeded fault plans against the full pipeline.

The contract under test (ISSUE: fault injection & graceful degradation):
every faulted run either

* completes with a **valid** image — bit-identical to the fault-free
  baseline when only benign faults (delays/stragglers) fired, or a
  degraded-but-correct image (flagged ``degraded``) after a rank loss
  under the default ``degrade`` recovery policy — or
* raises a **typed** :class:`~repro.errors.ReproError`
  (``RankFailedError`` / ``DeadlockError`` / ``WireFormatError``),

and it never hangs (a SIGALRM watchdog enforces this locally even
without pytest-timeout) and never returns silently-wrong pixels.
Lossless recovery (checkpoint-resume, worker respawn) has its own
dedicated suite in ``test_recovery.py``.

Workloads are small (32³ volume, 32 px image, P=4) so the whole matrix
runs in seconds; plans replay identically on the simulator and the real
multiprocessing transport, which is asserted directly on the injected
event streams.  The randomized matrix draws its plans from the shared
:func:`repro.cluster.faults.random_plan` generator (also used by the
nightly soak loop); ``REPRO_CHAOS_SEED_OFFSET`` shifts the seed range so
soak iterations explore fresh scenarios.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, FaultRule, random_plan
from repro.errors import RankFailedError, ReproError, WireFormatError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem

pytestmark = pytest.mark.chaos

#: Paper methods plus a sample of schedule × codec combos, so fault
#: handling is exercised through the generic engine too (radix-k keeps
#: its default binary radix here: degraded reruns fold onto P/2 ranks
#: and the effective radix must adapt).  The tile-routed entry runs the
#: barrier-free engine through the same fault matrix: degradation
#: rebuilds the tile map over the survivors, and checkpoint-resume
#: falls back down the recovery lattice (no stage boundaries).
METHODS = (
    "bs", "bsbr", "bslc", "bsbrc",
    "radix-k:rect-rle", "binary-swap:rle", "sectioned:raw",
    "tile-routed:rect-rle",
)
BACKENDS = ("sim", "mp")
NUM_RANKS = 4
NUM_STAGES = 2  # log2(4)

_WATCHDOG_SECONDS = 90


@pytest.fixture(autouse=True)
def _hang_watchdog():
    """Hard per-test hang guard, independent of pytest-timeout.

    POSIX interval timers are not inherited across fork, so the alarm
    cannot misfire inside mp worker processes.
    """

    def _fire(signum, frame):  # pragma: no cover - only on a real hang
        raise RuntimeError(
            f"chaos test exceeded the {_WATCHDOG_SECONDS}s hang watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(_WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _config(method: str) -> RunConfig:
    return RunConfig(
        dataset="engine_low",
        image_size=32,
        num_ranks=NUM_RANKS,
        method=method,
        volume_shape=(32, 32, 16),
        comm_timeout=3.0,
    )


_BASELINES: dict[str, object] = {}


def _baseline(method: str):
    """Fault-free final image per method (simulator; mp is bit-identical,
    asserted by the backend-parity suite)."""
    found = _BASELINES.get(method)
    if found is None:
        found = SortLastSystem(_config(method)).run(backend="sim").final_image
        _BASELINES[method] = found
    return found


def _images_equal(a, b) -> bool:
    return np.array_equal(a.intensity, b.intensity) and np.array_equal(
        a.opacity, b.opacity
    )


# ---------------------------------------------------------------------------
# Benign faults: delays and stragglers never change pixels
# ---------------------------------------------------------------------------
class TestBenignFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delays_are_bit_identical_and_recorded(self, backend):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="delay", rank=1, seconds=0.05, max_applications=2),
                FaultRule(kind="slow", rank=3, seconds=0.01),
            ),
            seed=11,
        )
        result = SortLastSystem(_config("bsbrc")).run(
            backend=backend, fault_plan=plan
        )
        assert not result.degraded
        assert _images_equal(result.final_image, _baseline("bsbrc"))
        events = result.timeline.events
        assert any(e["fault"] == "delay" and e["rank"] == 1 for e in events)
        assert any(e["fault"] == "slow" and e["rank"] == 3 for e in events)
        assert all(e["event"] == "injected" for e in events)

    def test_injected_event_streams_match_across_substrates(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="delay", rank=0, seconds=0.02, max_applications=3),
                FaultRule(kind="slow", rank=2, seconds=0.005),
                FaultRule(
                    kind="delay", rank=1, seconds=0.01, probability=0.5,
                    max_applications=0,
                ),
            ),
            seed=42,
        )
        per_backend = {}
        for backend in BACKENDS:
            result = SortLastSystem(_config("bsbr")).run(
                backend=backend, fault_plan=plan
            )
            per_backend[backend] = result.timeline.events
        assert per_backend["sim"] == per_backend["mp"]
        assert per_backend["sim"]  # the plan actually fired


# ---------------------------------------------------------------------------
# Crashes: degradation on render loss, typed fail-fast elsewhere
# ---------------------------------------------------------------------------
class TestCrashFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_render_crash_degrades_to_valid_image(self, backend, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=2, phase="render"),), seed=5
        )
        start = time.monotonic()
        result = SortLastSystem(_config("bsbrc")).run(
            backend=backend, fault_plan=plan
        )
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # detection + degraded rerun, well under budget
        assert result.degraded
        assert result.failed_ranks == [2]
        assert result.plan.num_ranks == 3  # 2 cores + 1 extra survive
        reference = result.reference_image()
        assert np.allclose(result.final_image.intensity, reference.intensity)
        assert np.allclose(result.final_image.opacity, reference.opacity)
        # The timeline document records the whole story.
        doc = result.timeline.to_dict()
        assert doc["meta"]["degraded"] is True
        assert doc["meta"]["failed_ranks"] == [2]
        kinds = [(e["event"], e.get("fault")) for e in doc["events"]]
        assert ("injected", "crash") in kinds
        assert ("detected", "crash") in kinds
        assert ("degraded", None) in kinds
        # ... and survives a JSON round trip to disk.
        path = tmp_path / "timeline.json"
        result.timeline.save(path)
        from repro.cluster.run_timeline import RunTimeline

        reloaded = RunTimeline.load(path)
        assert reloaded.meta["degraded"] is True
        assert reloaded.events == result.timeline.events

    @pytest.mark.parametrize(
        "method", ("radix-k:rect-rle", "binary-swap:rle", "sectioned:raw")
    )
    def test_render_crash_degrades_combo_methods(self, method):
        """The engine path degrades too: the schedule's refold pairing
        feeds :func:`~repro.volume.folded.refold_survivors` and the
        schedule re-adapts to the folded core count."""
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=2, phase="render"),), seed=5
        )
        result = SortLastSystem(_config(method)).run(backend="sim", fault_plan=plan)
        assert result.degraded
        reference = result.reference_image()
        assert np.allclose(result.final_image.intensity, reference.intensity)
        assert np.allclose(result.final_image.opacity, reference.opacity)

    def test_degraded_images_are_bit_identical_across_substrates(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=1, phase="render"),), seed=6
        )
        results = [
            SortLastSystem(_config("bsbrc")).run(backend=b, fault_plan=plan)
            for b in BACKENDS
        ]
        assert all(r.degraded for r in results)
        assert _images_equal(results[0].final_image, results[1].final_image)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_composite_stage_crash_fails_fast_and_typed_under_abort(self, backend):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=5
        )
        start = time.monotonic()
        with pytest.raises(RankFailedError) as err:
            SortLastSystem(_config("bsbrc")).run(
                backend=backend, fault_plan=plan, recovery="abort"
            )
        assert time.monotonic() - start < 5.0  # the ISSUE's detection window
        assert err.value.rank == 1
        assert "injected crash" in str(err.value)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_composite_stage_crash_degrades_by_default(self, backend):
        """The default ``degrade`` policy now covers mid-compositing
        losses too: the run re-folds onto survivors instead of raising."""
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=1, stage=1),), seed=5
        )
        result = SortLastSystem(_config("bsbrc")).run(
            backend=backend, fault_plan=plan
        )
        assert result.degraded
        assert result.failed_ranks == [1]
        reference = result.reference_image()
        assert np.allclose(result.final_image.intensity, reference.intensity)
        assert np.allclose(result.final_image.opacity, reference.opacity)
        kinds = [(e["event"], e.get("action")) for e in result.timeline.events]
        assert ("recovery", "degrade") in kinds

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_degrade_flag_reraises(self, backend):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", rank=2, phase="render"),), seed=5
        )
        with pytest.raises(RankFailedError):
            SortLastSystem(_config("bsbrc")).run(
                backend=backend, fault_plan=plan, degrade=False
            )


# ---------------------------------------------------------------------------
# Corruption: always a WireFormatError, never wrong pixels
# ---------------------------------------------------------------------------
class TestCorruptionFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", ("bs", "bsbrc"))
    def test_corruption_surfaces_wire_format_error(self, backend, method):
        plan = FaultPlan(
            rules=(FaultRule(kind="corrupt", rank=0, stage=0),), seed=21
        )
        with pytest.raises(WireFormatError, match="failed CRC32"):
            SortLastSystem(_config(method)).run(backend=backend, fault_plan=plan)


# ---------------------------------------------------------------------------
# Drops: a typed error (deadlock or downstream failure), never a hang
# ---------------------------------------------------------------------------
class TestDropFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dropped_message_raises_typed_error(self, backend):
        plan = FaultPlan(
            rules=(FaultRule(kind="drop", rank=0, stage=0),), seed=31
        )
        with pytest.raises(ReproError):
            SortLastSystem(_config("bsbrc")).run(backend=backend, fault_plan=plan)


# ---------------------------------------------------------------------------
# Randomized matrix: seeded plans x methods x substrates
# ---------------------------------------------------------------------------
#: The nightly soak loop shifts this so each iteration explores a fresh
#: seed window while any failure stays reproducible from the offset.
_SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED_OFFSET", "0"))


class TestChaosMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_plan_completes_validly_or_raises_typed(self, seed, backend):
        seed = seed + _SEED_OFFSET
        method = METHODS[seed % len(METHODS)]
        plan = random_plan(seed, num_ranks=NUM_RANKS, num_stages=NUM_STAGES)
        try:
            result = SortLastSystem(_config(method)).run(
                backend=backend, fault_plan=plan
            )
        except ReproError:
            return  # typed failure is an acceptable outcome by contract
        fired = {e.get("fault") for e in result.timeline.events if e["event"] == "injected"}
        if result.degraded:
            # Valid partial image: matches its own sequential reference.
            reference = result.reference_image()
            assert np.allclose(result.final_image.intensity, reference.intensity)
            assert np.allclose(result.final_image.opacity, reference.opacity)
        else:
            # Completed un-degraded: only benign faults may have fired,
            # and pixels must match the fault-free baseline exactly.
            assert fired <= {"delay", "slow"}
            assert _images_equal(result.final_image, _baseline(method))
