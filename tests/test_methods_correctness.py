"""End-to-end correctness of every compositing method.

The master invariant: for any dataset, processor count and viewpoint,
assembling the per-rank owned portions after compositing must equal the
sequential depth-order composite of the rendered subimages.
"""

import numpy as np
import pytest

from conftest import SMALL_IMAGE, random_subimages, rendered_workload, reference_image
from repro.cluster.model import IDEALIZED, SP2
from repro.compositing.registry import available_methods
from repro.errors import CompositingError
from repro.pipeline.system import assemble_final, run_compositing, validate_ownership
from repro.render.reference import composite_sequential
from repro.volume.partition import depth_order, recursive_bisect

ALL_METHODS = tuple(available_methods())
PARTITION_METHODS = tuple(m for m in ALL_METHODS if m != "tree")


def run_and_assemble(subimages, method, plan, camera, **options):
    run = run_compositing(
        list(subimages), method, plan, camera.view_dir, SP2, **options
    )
    final = assemble_final(run.outcomes, *subimages[0].shape)
    return final, run


class TestAgainstSequentialReference:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("num_ranks", [2, 4, 8, 16])
    def test_engine_matches_reference(self, method, num_ranks):
        subimages, plan, camera = rendered_workload("engine_low", num_ranks)
        reference = reference_image("engine_low", num_ranks)
        final, _ = run_and_assemble(subimages, method, plan, camera)
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("dataset", ["engine_high", "head", "cube", "sphere"])
    def test_all_datasets_match_reference(self, method, dataset):
        subimages, plan, camera = rendered_workload(dataset, 8)
        reference = reference_image(dataset, 8)
        final, _ = run_and_assemble(subimages, method, plan, camera)
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize(
        "rotation", [(0.0, 0.0, 0.0), (90.0, 0.0, 0.0), (0.0, 35.0, 0.0), (25.0, 35.0, 10.0)]
    )
    def test_viewpoints_match_reference(self, method, rotation):
        subimages, plan, camera = rendered_workload("engine_low", 8, SMALL_IMAGE, rotation)
        reference = reference_image("engine_low", 8, SMALL_IMAGE, rotation)
        final, _ = run_and_assemble(subimages, method, plan, camera)
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_random_images_match_reference(self, method, rng):
        """Protocol correctness is geometry-free: random sparse images
        composited in the plan-implied order must match too."""
        num_ranks = 8
        plan = recursive_bisect((32, 32, 16), num_ranks)
        view = np.array([0.37, -0.61, 0.70])
        images = random_subimages(rng, num_ranks, 40, 40)
        reference = composite_sequential(images, depth_order(plan, view))
        run = run_compositing(images, method, plan, view, IDEALIZED)
        final = assemble_final(run.outcomes, 40, 40)
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("method", ["bs", "bsbr", "bslc", "bsbrc"])
    def test_single_blank_rank_tolerated(self, method, rng):
        """One rank rendering nothing (empty block footprint) must not
        break any method — its rects are empty, its runs all blank."""
        num_ranks = 4
        plan = recursive_bisect((32, 32, 16), num_ranks)
        view = np.array([0.1, 0.2, -0.9])
        images = random_subimages(rng, num_ranks, 32, 32)
        from repro.render.image import SubImage

        images[2] = SubImage.blank(32, 32)
        reference = composite_sequential(images, depth_order(plan, view))
        run = run_compositing(images, method, plan, view, IDEALIZED)
        final = assemble_final(run.outcomes, 32, 32)
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("method", ["bs", "bsbr", "bslc", "bsbrc"])
    def test_all_blank_everywhere(self, method):
        from repro.render.image import SubImage

        num_ranks = 4
        plan = recursive_bisect((32, 32, 16), num_ranks)
        images = [SubImage.blank(16, 16) for _ in range(num_ranks)]
        run = run_compositing(images, method, plan, np.array([0, 0, -1.0]), IDEALIZED)
        final = assemble_final(run.outcomes, 16, 16)
        assert final.nonblank_count() == 0


class TestOwnership:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    @pytest.mark.parametrize("num_ranks", [2, 8, 16])
    def test_ownership_partitions_image(self, method, num_ranks):
        subimages, plan, camera = rendered_workload("engine_low", num_ranks)
        _, run = run_and_assemble(subimages, method, plan, camera)
        validate_ownership(run.outcomes, *subimages[0].shape)

    def test_tree_root_owns_everything(self):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        _, run = run_and_assemble(subimages, "tree", plan, camera)
        assert run.outcomes[0].owned_rect == subimages[0].full_rect()
        for outcome in run.outcomes[1:]:
            assert outcome.owned_rect.is_empty

    def test_validate_ownership_detects_overlap(self):
        subimages, plan, camera = rendered_workload("engine_low", 2)
        _, run = run_and_assemble(subimages, "bs", plan, camera)
        bad = [run.outcomes[0], run.outcomes[0]]  # same region twice
        with pytest.raises(CompositingError):
            validate_ownership(bad, *subimages[0].shape)

    def test_validate_ownership_detects_gap(self):
        subimages, plan, camera = rendered_workload("engine_low", 2)
        _, run = run_and_assemble(subimages, "bs", plan, camera)
        with pytest.raises(CompositingError):
            validate_ownership(run.outcomes[:1], *subimages[0].shape)


class TestInputsPreserved:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_inputs_not_mutated(self, method):
        subimages, plan, camera = rendered_workload("engine_low", 4)
        before = [(img.intensity.copy(), img.opacity.copy()) for img in subimages]
        run_and_assemble(subimages, method, plan, camera)
        for img, (bi, ba) in zip(subimages, before):
            assert np.array_equal(img.intensity, bi)
            assert np.array_equal(img.opacity, ba)


class TestMethodOptions:
    @pytest.mark.parametrize("policy", ["longest", "alternate", "rows"])
    @pytest.mark.parametrize("method", ["bs", "bsbr", "bsbrc"])
    def test_split_policies_all_correct(self, method, policy):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        reference = reference_image("engine_low", 8)
        final, _ = run_and_assemble(
            subimages, method, plan, camera, split_policy=policy
        )
        assert final.max_abs_diff(reference) < 1e-9

    @pytest.mark.parametrize("section", [1, 7, 16, 64, 4096])
    def test_bslc_sections_all_correct(self, section):
        subimages, plan, camera = rendered_workload("engine_low", 8)
        reference = reference_image("engine_low", 8)
        final, _ = run_and_assemble(subimages, "bslc", plan, camera, section=section)
        assert final.max_abs_diff(reference) < 1e-9

    def test_bslc_invalid_section(self):
        from repro.compositing.bslc import BinarySwapLoadBalancedCompression

        with pytest.raises(CompositingError):
            BinarySwapLoadBalancedCompression(section=0)

    def test_plan_size_mismatch_rejected(self):
        subimages, plan, camera = rendered_workload("engine_low", 4)
        wrong_plan = recursive_bisect((32, 32, 16), 8)
        with pytest.raises(CompositingError):
            run_compositing(list(subimages), "bs", wrong_plan, camera.view_dir, SP2)
