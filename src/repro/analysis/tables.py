"""Render measurement grids in the paper's table layout.

Table 1 / Table 2 group rows by dataset, one row per processor count,
with (T_comp, T_comm, T_total) columns per method, milliseconds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .metrics import MethodMeasurement

__all__ = ["format_paper_table", "format_mmax_table", "format_generic"]


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def format_paper_table(
    rows: Iterable[MethodMeasurement],
    *,
    methods: Sequence[str],
    datasets: Sequence[str],
    title: str = "",
) -> str:
    """Format measurements like the paper's Table 1/2.

    ``rows`` may contain any superset of the requested grid; missing
    cells render as ``-``.
    """
    index: dict[tuple[str, str, int], MethodMeasurement] = {}
    ranks: set[int] = set()
    for row in rows:
        index[(row.dataset, row.method, row.num_ranks)] = row
        ranks.add(row.num_ranks)
    rank_list = sorted(ranks)

    out: list[str] = []
    if title:
        out.append(title)
    header = ["P"] + [
        f"{m.upper()}:{col}" for m in methods for col in ("Tcomp", "Tcomm", "Ttotal")
    ]
    widths = [max(8, len(h) + 1) for h in header]

    def fmt_row(cells: list[str]) -> str:
        return " ".join(c.rjust(w) for c, w in zip(cells, widths))

    for dataset in datasets:
        out.append("")
        out.append(f"--- {dataset} ---")
        out.append(fmt_row(header))
        for p in rank_list:
            cells = [str(p)]
            for method in methods:
                m = index.get((dataset, method, p))
                if m is None:
                    cells += ["-", "-", "-"]
                else:
                    cells += [_ms(m.t_comp), _ms(m.t_comm), _ms(m.t_total)]
            out.append(fmt_row(cells))
    out.append("")
    out.append("(Time unit: ms)")
    return "\n".join(out)


def format_mmax_table(
    rows: Iterable[MethodMeasurement],
    *,
    methods: Sequence[str],
    datasets: Sequence[str],
    title: str = "Maximum received message size M_max (bytes)",
) -> str:
    """Per-dataset grid of ``M_max`` by (P, method) — the eq. (9) data."""
    index: dict[tuple[str, str, int], MethodMeasurement] = {}
    ranks: set[int] = set()
    for row in rows:
        index[(row.dataset, row.method, row.num_ranks)] = row
        ranks.add(row.num_ranks)
    rank_list = sorted(ranks)

    out: list[str] = [title]
    header = ["P"] + [m.upper() for m in methods]
    widths = [max(10, len(h) + 1) for h in header]

    def fmt_row(cells: list[str]) -> str:
        return " ".join(c.rjust(w) for c, w in zip(cells, widths))

    for dataset in datasets:
        out.append("")
        out.append(f"--- {dataset} ---")
        out.append(fmt_row(header))
        for p in rank_list:
            cells = [str(p)]
            for method in methods:
                m = index.get((dataset, method, p))
                cells.append("-" if m is None else str(m.mmax_bytes))
            out.append(fmt_row(cells))
    return "\n".join(out)


def format_generic(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width table for ad-hoc reports."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in str_rows]
    return "\n".join(lines)
