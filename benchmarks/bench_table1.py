"""Benchmark T1 — regenerate the paper's Table 1 and check its shape.

Times the full 4-method x 4-dataset x P=2..64 compositing grid at
384x384 (the paper's first experiment) and asserts the qualitative
claims of §4 on the regenerated numbers.  The shape checks run both
inside the benchmark test (so ``--benchmark-only`` still verifies them)
and as standalone tests for plain ``pytest benchmarks/``.
"""

from conftest import PAPER_RANKS, cell, emit
from repro.experiments.table1 import format_table1, run_table1
from repro.volume.datasets import PAPER_DATASETS


def check_table1_shape(rows):
    """Assert the paper's §4 qualitative claims on regenerated rows."""
    for dataset in PAPER_DATASETS:
        # BS worst everywhere; its T_comp grows monotonically toward To*A.
        comps = [cell(rows, dataset, p)["bs"].t_comp for p in PAPER_RANKS]
        assert comps == sorted(comps) and comps[-1] > comps[0], dataset
        for p in PAPER_RANKS:
            c = cell(rows, dataset, p)
            assert c["bs"].t_total == max(m.t_total for m in c.values()), (dataset, p)
            # Eq. (4) vs (8): BSBRC ships no more than BSBR.
            assert c["bsbrc"].t_comm <= c["bsbr"].t_comm * 1.02, (dataset, p)
            # "in most cases ... the BSLC method has the smallest
            # communication time" — the paper's own §4 wording allows
            # exceptions (it cites P=2); grant a 5% band elsewhere too.
            if p > 2:
                assert c["bslc"].t_comm <= min(m.t_comm for m in c.values()) * 1.05, (
                    dataset,
                    p,
                )
            # BSBRC best or near-best overall (BSBR may edge it on dense
            # data at some P, exactly as in the paper's Figure 9).
            best = min(m.t_total for m in c.values())
            assert c["bsbrc"].t_total <= best * 1.15, (dataset, p)
        # "T_comp(BSLC) is much larger than T_comp(BSBRC)/(BSBR)" at scale.
        for p in (8, 16, 32, 64):
            c = cell(rows, dataset, p)
            assert c["bslc"].t_comp > c["bsbr"].t_comp, (dataset, p)
            assert c["bslc"].t_comp > c["bsbrc"].t_comp, (dataset, p)
        # Headline speedup of sparse compositing over plain binary swap.
        c64 = cell(rows, dataset, 64)
        assert c64["bs"].t_total / c64["bsbrc"].t_total > 3.0, dataset
    # Figures 10-11 regime: BSBRC wins outright on the sparse datasets.
    for dataset in ("engine_high", "cube"):
        for p in PAPER_RANKS:
            c = cell(rows, dataset, p)
            assert c["bsbrc"].t_total == min(m.t_total for m in c.values()), (
                dataset,
                p,
            )


def test_bench_table1_grid(benchmark):
    """Time one full Table 1 regeneration (renders cached beforehand)."""
    from repro.experiments.harness import workload

    for dataset in PAPER_DATASETS:  # pre-render outside the timed region
        workload(dataset, 384, max_ranks=64)
    rows = benchmark.pedantic(
        lambda: run_table1(rank_counts=PAPER_RANKS), rounds=1, iterations=1
    )
    assert len(rows) == 4 * 6 * 4
    check_table1_shape(rows)
    emit("table1", format_table1(rows))


def test_table1_shape(table1_rows):
    """Standalone shape check for non-benchmark runs."""
    check_table1_shape(table1_rows)
