"""Tests for the real-transport (multiprocessing) backend.

Kept small and fast — the host has one core, so these validate
correctness of the transport port, not performance.
"""

import pytest

from conftest import rendered_workload, reference_image
from repro.cluster.mp_backend import MPRankContext, run_rank_programs_mp
from repro.errors import ConfigurationError, SimulationError
from repro.pipeline.mp import run_compositing_mp
from repro.volume.folded import partition_folded
from repro.volume.partition import recursive_bisect

SMALL = dict(image_size=32, volume_shape=(32, 32, 16))


# Programs must be module-level (picklable / fork-visible).
async def _echo_program(ctx):
    peer = ctx.rank ^ 1
    reply = await ctx.sendrecv(peer, f"hello-from-{ctx.rank}", tag=1)
    await ctx.barrier()
    return reply


async def _ring_program(ctx):
    nxt = (ctx.rank + 1) % ctx.size
    prv = (ctx.rank - 1) % ctx.size
    if ctx.rank % 2 == 0:
        await ctx.send(nxt, ctx.rank, tag=0)
        value = await ctx.recv(prv, tag=0)
    else:
        value = await ctx.recv(prv, tag=0)
        await ctx.send(nxt, ctx.rank, tag=0)
    return value


async def _counter_program(ctx):
    await ctx.charge_over(123)
    ctx.note("custom", 7)
    return ctx.rank


async def _failing_program(ctx):
    if ctx.rank == 1:
        raise ValueError("intentional")
    await ctx.barrier()


async def _yielding_program(ctx):
    from repro.cluster.events import ComputeOp

    await ComputeOp(1.0)  # simulator-only primitive


class TestRawBackend:
    def test_sendrecv_and_barrier(self):
        result = run_rank_programs_mp(2, _echo_program, timeout=30)
        assert result.returns == ["hello-from-1", "hello-from-0"]

    def test_ring(self):
        result = run_rank_programs_mp(4, _ring_program, timeout=30)
        assert result.returns == [3, 0, 1, 2]

    def test_counters_collected(self):
        result = run_rank_programs_mp(2, _counter_program, timeout=30)
        assert result.returns == [0, 1]
        for counters in result.counters:
            assert counters["over"] == 123
            assert counters["custom"] == 7

    def test_failure_surfaces(self):
        with pytest.raises(SimulationError) as excinfo:
            run_rank_programs_mp(2, _failing_program, timeout=15)
        assert "rank 1" in str(excinfo.value)

    def test_simulator_only_ops_rejected(self):
        with pytest.raises(SimulationError):
            run_rank_programs_mp(1, _yielding_program, timeout=15)

    def test_bad_rank_count(self):
        with pytest.raises(ConfigurationError):
            run_rank_programs_mp(0, _echo_program)

    def test_context_validation(self):
        ctx = MPRankContext(0, 2, None, None, 1.0)
        with pytest.raises(ConfigurationError):
            ctx._check_peer(5)
        with pytest.raises(ConfigurationError):
            ctx.model


class TestCompositingCrossValidation:
    @pytest.mark.parametrize("method", ["bs", "bsbr", "bslc", "bsbrc"])
    def test_matches_simulator_reference(self, method):
        """The same compositor on a *real* transport produces the exact
        image the simulator (and the sequential oracle) produce."""
        subimages, plan, camera = rendered_workload(
            "engine_low", 4, SMALL["image_size"], (20.0, 30.0, 0.0),
            SMALL["volume_shape"],
        )
        reference = reference_image(
            "engine_low", 4, SMALL["image_size"], (20.0, 30.0, 0.0),
            SMALL["volume_shape"],
        )
        final = run_compositing_mp(
            list(subimages), method, plan, camera.view_dir, timeout=45
        )
        assert final.max_abs_diff(reference) < 1e-9

    def test_folded_non_pow2(self):
        from repro.render.raycast import render_subvolume
        from repro.render.reference import composite_sequential
        from repro.volume.datasets import make_dataset
        from repro.volume.folded import folded_depth_order

        volume, transfer = make_dataset("engine_low", SMALL["volume_shape"])
        from repro.render.camera import Camera

        camera = Camera(
            width=32, height=32, volume_shape=volume.shape, rot_x=20, rot_y=30
        )
        folded = partition_folded(volume.shape, 3)
        subimages = [
            render_subvolume(volume, transfer, camera, folded.extent(r))
            for r in range(3)
        ]
        reference = composite_sequential(
            subimages, folded_depth_order(folded, camera.view_dir)
        )
        final = run_compositing_mp(
            subimages, "bsbrc", folded, camera.view_dir, timeout=45
        )
        assert final.max_abs_diff(reference) < 1e-9

    def test_plan_size_mismatch(self):
        subimages, plan, camera = rendered_workload(
            "engine_low", 4, SMALL["image_size"], (20.0, 30.0, 0.0),
            SMALL["volume_shape"],
        )
        wrong = recursive_bisect(SMALL["volume_shape"], 8)
        from repro.errors import CompositingError

        with pytest.raises(CompositingError):
            run_compositing_mp(list(subimages), "bs", wrong, camera.view_dir)
