"""Synthetic stand-ins for the paper's CT test samples.

The original evaluation used four 8-bit CT volumes — *Engine_low*,
*Engine_high* (the same engine with two opacity windows), *Head*
(256x256x113) and *Cube* (256x256x110) — which are not available here.
Each phantom below is an implicit-geometry field tuned to reproduce the
property the paper actually exercises: the screen-space *sparsity
structure* of per-processor subimages.

* ``engine`` — hollow machined casing around dense internals (pistons,
  crankshaft, bolts).  With a low opacity threshold the casing renders
  (dense subimages, paper's *Engine_low*); with a high threshold only the
  internals do (sparse, *Engine_high*).
* ``head`` — nested ellipsoid shells (skin / skull / brain) plus eyes:
  a dense, centered object like the CT head.
* ``cube`` — a wireframe cube (thick edges + thin face grid lines):
  projections span a *large but sparse* bounding rectangle, matching the
  paper's description of Cube as the best case for BSBRC over BSBR.

All generators are deterministic and fully vectorized; fields are in
``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from .grid import VolumeGrid
from .transfer import TransferFunction

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "PAPER_DATASETS",
    "make_dataset",
    "make_engine",
    "make_head",
    "make_cube",
    "make_sphere",
]


def _norm_coords(shape: tuple[int, int, int]):
    """Open-grid normalized coordinates in [-1, 1] per axis (broadcastable)."""
    nx, ny, nz = shape
    xs = (np.arange(nx, dtype=np.float32) + 0.5) / nx * 2.0 - 1.0
    ys = (np.arange(ny, dtype=np.float32) + 0.5) / ny * 2.0 - 1.0
    zs = (np.arange(nz, dtype=np.float32) + 0.5) / nz * 2.0 - 1.0
    return xs[:, None, None], ys[None, :, None], zs[None, None, :]


def make_engine(shape: tuple[int, int, int] = (256, 256, 110)) -> VolumeGrid:
    """Machined-part phantom: hollow casing + dense internals."""
    X, Y, Z = _norm_coords(shape)
    field = np.zeros(shape, dtype=np.float32)

    # Hollow superellipsoid casing (moderate density ~0.30).
    def _super(ax: float, ay: float, az: float) -> np.ndarray:
        return (X / ax) ** 4 + (Y / ay) ** 4 + (Z / az) ** 4

    outer = _super(0.84, 0.74, 0.92) <= 1.0
    inner = _super(0.72, 0.62, 0.80) <= 1.0
    field[outer & ~inner] = 0.30
    field[inner] = 0.06  # faint interior air/oil

    # Four piston cylinders along z (dense, ~0.85).
    for cx, cy in ((-0.36, -0.30), (-0.36, 0.30), (0.36, -0.30), (0.36, 0.30)):
        cyl = ((X - cx) ** 2 + (Y - cy) ** 2 <= 0.16**2) & (np.abs(Z) <= 0.60)
        field[cyl] = 0.85

    # Crankshaft along x (densest, ~0.92).
    crank = (Y**2 + Z**2 <= 0.12**2) & (np.abs(X) <= 0.78)
    field[crank] = 0.92

    # Head bolts: small dense spheres on top.
    for cx in (-0.5, 0.0, 0.5):
        bolt = (X - cx) ** 2 + Y**2 + (Z - 0.75) ** 2 <= 0.10**2
        field[bolt] = 0.95

    return VolumeGrid(data=field, name="engine")


def make_head(shape: tuple[int, int, int] = (256, 256, 113)) -> VolumeGrid:
    """Nested-ellipsoid head phantom (skin / skull / brain / eyes)."""
    X, Y, Z = _norm_coords(shape)
    field = np.zeros(shape, dtype=np.float32)

    r = np.sqrt((X / 0.70) ** 2 + (Y / 0.82) ** 2 + (Z / 0.90) ** 2)
    skin = (r <= 1.0) & (r > 0.92)
    skull = (r <= 0.92) & (r > 0.80)
    brain = r <= 0.80
    field[skin] = 0.28
    field[skull] = 0.72
    # Brain tissue with gyri-like modulation.
    wrinkle = (
        0.46
        + 0.08 * np.sin(7.0 * np.pi * X) * np.sin(6.0 * np.pi * Y) * np.sin(5.0 * np.pi * Z)
    ).astype(np.float32)
    field = np.where(brain, np.broadcast_to(wrinkle, shape), field).astype(np.float32)

    # Eyes: two dense spheres at the front.
    for cx in (-0.28, 0.28):
        eye = (X - cx) ** 2 + ((Y + 0.70) / 1.0) ** 2 + (Z - 0.18) ** 2 <= 0.12**2
        field[eye] = 0.82
    return VolumeGrid(data=np.clip(field, 0.0, 1.0), name="head")


def make_cube(shape: tuple[int, int, int] = (256, 256, 110)) -> VolumeGrid:
    """Wireframe cube: 12 thick edges + thin face grid lines.

    Designed so per-processor subimages have **large, sparse** bounding
    rectangles — the regime where BSBR degrades and BSBRC shines.
    """
    X, Y, Z = _norm_coords(shape)
    field = np.zeros(shape, dtype=np.float32)
    lo, hi = 0.72, 0.86
    coords = (np.abs(X), np.abs(Y), np.abs(Z))
    inside = (coords[0] <= hi) & (coords[1] <= hi) & (coords[2] <= hi)

    # Thin grid lines on the six faces (sparse pattern).
    for a in range(3):
        on_face = (coords[a] >= lo) & (coords[a] <= hi)
        b, c = (a + 1) % 3, (a + 2) % 3
        grid_b = np.abs(np.sin(3.0 * np.pi * (X, Y, Z)[b])) <= 0.10
        grid_c = np.abs(np.sin(3.0 * np.pi * (X, Y, Z)[c])) <= 0.10
        lines = on_face & inside & (grid_b | grid_c)
        field[np.broadcast_to(lines, shape)] = 0.55

    # Twelve dense edges: two coordinates in the shell band.
    for a in range(3):
        b, c = (a + 1) % 3, (a + 2) % 3
        edge = (
            (coords[b] >= lo)
            & (coords[b] <= hi)
            & (coords[c] >= lo)
            & (coords[c] <= hi)
            & (coords[a] <= hi)
        )
        field[np.broadcast_to(edge, shape)] = 0.90
    return VolumeGrid(data=field, name="cube")


def make_sphere(shape: tuple[int, int, int] = (32, 32, 32), radius: float = 0.7) -> VolumeGrid:
    """Simple dense ball — the unit-test phantom."""
    if not (0.0 < radius <= 1.0):
        raise ConfigurationError(f"radius must be in (0, 1], got {radius}")
    X, Y, Z = _norm_coords(shape)
    r = np.sqrt(X**2 + Y**2 + Z**2)
    field = np.clip((radius - r) / radius, 0.0, 1.0) * 0.9
    return VolumeGrid(data=field.astype(np.float32), name="sphere")


@dataclass(frozen=True)
class DatasetSpec:
    """A named (volume, transfer function) pair from the paper's table."""

    name: str
    volume_key: str
    volume_factory: Callable[[tuple[int, int, int]], VolumeGrid]
    default_shape: tuple[int, int, int]
    transfer: TransferFunction
    description: str = ""


DATASETS: dict[str, DatasetSpec] = {
    "engine_low": DatasetSpec(
        name="engine_low",
        volume_key="engine",
        volume_factory=make_engine,
        default_shape=(256, 256, 110),
        transfer=TransferFunction(lo=0.14, hi=0.45, max_alpha=0.55, name="low-threshold"),
        description="Engine with low opacity threshold — casing visible, dense subimages",
    ),
    "engine_high": DatasetSpec(
        name="engine_high",
        volume_key="engine",
        volume_factory=make_engine,
        default_shape=(256, 256, 110),
        transfer=TransferFunction(lo=0.50, hi=0.88, max_alpha=0.70, name="high-threshold"),
        description="Engine with high opacity threshold — internals only, sparse subimages",
    ),
    "head": DatasetSpec(
        name="head",
        volume_key="head",
        volume_factory=make_head,
        default_shape=(256, 256, 113),
        transfer=TransferFunction(lo=0.20, hi=0.60, max_alpha=0.55, name="head"),
        description="Nested-ellipsoid head — dense centered object",
    ),
    "cube": DatasetSpec(
        name="cube",
        volume_key="cube",
        volume_factory=make_cube,
        default_shape=(256, 256, 110),
        transfer=TransferFunction(lo=0.40, hi=0.80, max_alpha=0.70, name="cube"),
        description="Wireframe cube — large, sparse bounding rectangles",
    ),
    "sphere": DatasetSpec(
        name="sphere",
        volume_key="sphere",
        volume_factory=make_sphere,
        default_shape=(32, 32, 32),
        transfer=TransferFunction(lo=0.15, hi=0.70, max_alpha=0.60, name="sphere"),
        description="Unit-test ball phantom",
    ),
}

#: The four datasets evaluated in the paper's Tables 1-2 / Figures 8-11.
PAPER_DATASETS = ("engine_low", "engine_high", "head", "cube")


@lru_cache(maxsize=8)
def _cached_volume(volume_key: str, shape: tuple[int, int, int]) -> VolumeGrid:
    factory = next(s.volume_factory for s in DATASETS.values() if s.volume_key == volume_key)
    return factory(shape)


def make_dataset(
    name: str, shape: tuple[int, int, int] | None = None
) -> tuple[VolumeGrid, TransferFunction]:
    """Instantiate a named dataset (volume + its transfer function).

    ``shape`` overrides the paper's default (for fast tests).  Volumes are
    cached, so ``engine_low`` and ``engine_high`` share one field.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    final_shape = tuple(shape) if shape is not None else spec.default_shape
    if len(final_shape) != 3 or any(s < 2 for s in final_shape):
        raise ConfigurationError(f"dataset shape must be 3 axes of >= 2, got {final_shape}")
    return _cached_volume(spec.volume_key, final_shape), spec.transfer  # type: ignore[arg-type]
