"""Metrics, analytic cost models, table/figure rendering."""

from .metrics import MethodMeasurement, check_mmax_ordering, measure, speedup
from .models import (
    Prediction,
    StageObservation,
    predict_bs,
    predict_bsbr,
    predict_bsbrc,
    predict_bslc,
)
from .plots import ascii_line_plot, series_summary
from .quality import ImageDelta, image_delta, mean_abs_error, psnr
from .sparsity import (
    SubimageSparsity,
    measure_sparsity,
    sparsity_table,
    wire_cost_estimates,
)
from .tables import format_generic, format_mmax_table, format_paper_table
from .timeline import Interval, ascii_gantt, intervals_from_stats, trace_to_json

__all__ = [
    "ImageDelta",
    "Interval",
    "MethodMeasurement",
    "Prediction",
    "StageObservation",
    "SubimageSparsity",
    "ascii_gantt",
    "ascii_line_plot",
    "check_mmax_ordering",
    "format_generic",
    "image_delta",
    "intervals_from_stats",
    "format_mmax_table",
    "format_paper_table",
    "measure",
    "mean_abs_error",
    "measure_sparsity",
    "predict_bs",
    "predict_bsbr",
    "predict_bsbrc",
    "predict_bslc",
    "psnr",
    "series_summary",
    "sparsity_table",
    "speedup",
    "trace_to_json",
    "wire_cost_estimates",
]
