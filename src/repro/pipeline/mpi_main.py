"""``mpiexec``-able entry point for the real-MPI deployment.

Thin wrapper: builds a :class:`~repro.pipeline.config.RunConfig` from
the command line and runs the *same*
:func:`~repro.pipeline.phases.pipeline_rank_program` every other backend
executes, via :class:`~repro.cluster.backend.MPIBackend` (SPMD — every
rank of the job calls it).  Rank 0 writes the final image and,
optionally, the unified run-timeline JSON.

    mpiexec -n 8 python -m repro.pipeline.mpi_main \
        --dataset engine_low --method bsbrc --image-size 384 --out out.pgm

Requires mpi4py (see :mod:`repro.cluster.mpi_backend`); the offline test
suite covers the identical pipeline through the multiprocessing backend.
"""

from __future__ import annotations

import argparse
import sys

from ..cluster.backend import MPIBackend
from ..cluster.mpi_backend import require_mpi
from ..compositing.registry import available_methods
from ..render.reference import luminance
from ..volume.datasets import DATASETS
from ..volume.io import to_gray8, write_pgm
from .config import RunConfig
from .phases import pipeline_rank_program

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="engine_low", choices=sorted(DATASETS))
    parser.add_argument("--method", default="bsbrc", choices=available_methods())
    parser.add_argument("--image-size", type=int, default=384)
    parser.add_argument("--rot-x", type=float, default=20.0)
    parser.add_argument("--rot-y", type=float, default=30.0)
    parser.add_argument("--out", default="mpi_composite.pgm")
    parser.add_argument("--trace-out", default=None,
                        help="write the unified run-timeline JSON here (rank 0)")
    args = parser.parse_args(argv)

    mpi = require_mpi()
    size = mpi.COMM_WORLD.Get_size()

    cfg = RunConfig(
        dataset=args.dataset,
        method=args.method,
        image_size=args.image_size,
        num_ranks=size,
        rot_x=args.rot_x,
        rot_y=args.rot_y,
        backend="mpi",
    )
    result = MPIBackend().run(size, pipeline_rank_program, (cfg, True))

    if result.local_rank == 0:
        final = result.returns[0][2]
        write_pgm(args.out, to_gray8(luminance(final), gain=2.0))
        if args.trace_out:
            result.timeline(
                meta={"dataset": cfg.dataset, "method": cfg.method,
                      "num_ranks": size, "image_size": cfg.image_size}
            ).save(args.trace_out)
        print(f"[rank 0] {args.method} on {size} MPI ranks -> {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - needs an MPI launcher
    sys.exit(main())
