"""Tests for the SubImage container and the sequential reference oracle."""

import numpy as np
import pytest

from repro.errors import CompositingError, RenderError
from repro.render.image import SubImage
from repro.render.reference import composite_sequential, luminance
from repro.types import Rect


def sparse_image(rng, h=10, w=12, density=0.3):
    mask = rng.random((h, w)) < density
    opacity = np.where(mask, rng.uniform(0.1, 0.9, (h, w)), 0.0)
    intensity = np.where(mask, rng.uniform(0.1, 1.0, (h, w)), 0.0)
    return SubImage(intensity=intensity, opacity=opacity)


class TestSubImage:
    def test_blank(self):
        image = SubImage.blank(5, 7)
        assert image.shape == (5, 7)
        assert image.nonblank_count() == 0
        assert image.sparsity() == 1.0
        assert image.bounding_rect().is_empty

    def test_blank_bad_size(self):
        with pytest.raises(RenderError):
            SubImage.blank(0, 5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RenderError):
            SubImage(intensity=np.zeros((2, 2)), opacity=np.zeros((3, 3)))

    def test_1d_rejected(self):
        with pytest.raises(RenderError):
            SubImage(intensity=np.zeros(4), opacity=np.zeros(4))

    def test_copy_is_deep(self):
        image = SubImage.blank(3, 3)
        clone = image.copy()
        clone.intensity[0, 0] = 1.0
        assert image.intensity[0, 0] == 0.0

    def test_float32_input_upcast(self):
        image = SubImage(
            intensity=np.zeros((2, 2), dtype=np.float32),
            opacity=np.zeros((2, 2), dtype=np.float32),
        )
        assert image.intensity.dtype == np.float64

    def test_masks_and_counts(self):
        image = SubImage.blank(4, 4)
        image.opacity[1, 2] = 0.5
        image.intensity[3, 0] = 0.2
        assert image.nonblank_count() == 2
        assert image.blank_mask().sum() == 14
        assert image.bounding_rect() == Rect(1, 0, 4, 3)

    def test_composite_under(self):
        back = SubImage.blank(2, 2)
        back.intensity[:] = 0.4
        back.opacity[:] = 0.5
        front = SubImage.blank(2, 2)
        front.intensity[:] = 0.2
        front.opacity[:] = 0.5
        back.composite_under(front)
        assert back.intensity[0, 0] == pytest.approx(0.2 + 0.5 * 0.4)
        assert back.opacity[0, 0] == pytest.approx(0.5 + 0.5 * 0.5)

    def test_composite_under_shape_mismatch(self):
        with pytest.raises(RenderError):
            SubImage.blank(2, 2).composite_under(SubImage.blank(3, 3))

    def test_allclose_and_diff(self):
        rng = np.random.default_rng(0)
        a = sparse_image(rng)
        b = a.copy()
        assert a.allclose(b)
        assert a.max_abs_diff(b) == 0.0
        b.intensity[0, 0] += 0.5
        assert not a.allclose(b)
        assert a.max_abs_diff(b) == pytest.approx(0.5)

    def test_max_abs_diff_shape_mismatch(self):
        with pytest.raises(RenderError):
            SubImage.blank(2, 2).max_abs_diff(SubImage.blank(2, 3))

    def test_repr_contains_counts(self):
        assert "nonblank=0/4" in repr(SubImage.blank(2, 2))


class TestCompositeSequential:
    def test_single_image_identity(self):
        rng = np.random.default_rng(1)
        image = sparse_image(rng)
        out = composite_sequential([image], [0])
        assert out.allclose(image)
        # inputs not mutated, not aliased
        out.intensity[0, 0] = 123.0
        assert image.intensity[0, 0] != 123.0

    def test_order_matters(self):
        a = SubImage.blank(1, 1)
        a.intensity[:] = 0.9
        a.opacity[:] = 0.9
        b = SubImage.blank(1, 1)
        b.intensity[:] = 0.1
        b.opacity[:] = 0.5
        ab = composite_sequential([a, b], [0, 1])
        ba = composite_sequential([a, b], [1, 0])
        assert ab.intensity[0, 0] != ba.intensity[0, 0]

    def test_blank_layers_are_transparent(self):
        rng = np.random.default_rng(2)
        image = sparse_image(rng)
        blanks = [SubImage.blank(*image.shape) for _ in range(3)]
        out = composite_sequential([image] + blanks, [1, 0, 2, 3])
        assert out.allclose(image)

    def test_non_permutation_rejected(self):
        images = [SubImage.blank(2, 2), SubImage.blank(2, 2)]
        with pytest.raises(CompositingError):
            composite_sequential(images, [0, 0])

    def test_wrong_length_rejected(self):
        with pytest.raises(CompositingError):
            composite_sequential([SubImage.blank(2, 2)], [0, 1])

    def test_mixed_shapes_rejected(self):
        with pytest.raises(CompositingError):
            composite_sequential([SubImage.blank(2, 2), SubImage.blank(3, 3)], [0, 1])

    def test_empty_list_rejected(self):
        with pytest.raises(CompositingError):
            composite_sequential([], [])

    def test_associativity_grouping_equivalence(self):
        """Folding in tree groups equals the linear fold (binary swap's
        correctness argument in miniature)."""
        rng = np.random.default_rng(3)
        images = [sparse_image(rng) for _ in range(4)]
        linear = composite_sequential(images, [0, 1, 2, 3])
        left = composite_sequential(images[:2], [0, 1])
        right = composite_sequential(images[2:], [0, 1])
        grouped = composite_sequential([left, right], [0, 1])
        assert grouped.max_abs_diff(linear) < 1e-12


class TestLuminance:
    def test_zero_background(self):
        rng = np.random.default_rng(4)
        image = sparse_image(rng)
        assert np.array_equal(luminance(image), image.intensity)

    def test_background_shows_through(self):
        image = SubImage.blank(2, 2)
        image.opacity[0, 0] = 1.0
        out = luminance(image, background=1.0)
        assert out[0, 0] == 0.0  # fully covered by (emissive black) pixel
        assert out[1, 1] == 1.0  # background visible
