"""The streaming progress plane: partial frames the moment they exist.

The compositing engines already *produce* progressively refined partial
images — :class:`~repro.compositing.engine.ScheduledCompositor`
snapshots a valid partial frame after every exchange stage (the same
state the recovery checkpoints persist), and
:class:`~repro.compositing.tile_engine.TileRoutedCompositor` finalizes
whole tiles one at a time — but until now both landed on disk or in
post-hoc timeline metadata.  :class:`ProgressFeed` routes them to a
live consumer instead: a feed installed on the rank contexts (via
:meth:`~repro.cluster.protocol.BaseRankContext.install_progress`)
receives one :class:`ProgressEvent` per completed exchange stage, per
completed tile, and one ``final`` event when the assembled display
image exists.

Bit-exactness contract
----------------------
Emission copies and never charges: feeds add **zero** model time, no
byte/message counters, and no accounting notes, so a run with a feed
installed is bit-identical (pixels and integer counters) to the same
run without one — that is tested.  A ``stage`` event's planes are
bit-identical to the corresponding
:class:`~repro.cluster.recovery.CheckpointSnapshot` image (both copy
the engine's image at the same post-stage point), and a ``tile``
event's pixels are the tile's *final* values (tile-routed tiles never
change after completion).

Coverage
--------
Every event carries a monotone non-decreasing ``coverage`` in ``[0,
1]`` — the feed's estimate of how much of the final frame is settled:
completed-tile pixels over frame pixels for tile-routed runs, completed
(rank, stage) pairs over the total for stage-synchronous runs, clamped
to never regress (a degraded re-run restarts its stage count, but a
progressive display never takes pixels back).  ``final`` is always
coverage 1.0 and carries the run's declared outcome, so a ``degraded``
partial frame arrives *flagged*, not silently.

Serialization
-------------
:meth:`ProgressEvent.to_dict` emits the ``repro.serve-event/1``
document the serving layer streams to clients (arrays as base64 with
dtype/shape, rects as ``[y0, x0, y1, x1]``);
:func:`serve_event_from_dict` round-trips it.

Threading: the feed is locked and :meth:`ProgressFeed.stream` is a
blocking generator, so a service thread can stream a job's frames while
the render runs on a pool worker.  The feed is simulator-oriented (all
ranks in one process share it); real transports reject a live feed at
the system layer.
"""

from __future__ import annotations

import base64
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from ..errors import DeadlineExceededError
from ..types import Rect

__all__ = [
    "SERVE_EVENT_SCHEMA",
    "ProgressEvent",
    "ProgressFeed",
    "serve_event_from_dict",
]

#: Schema tag of one streamed progress event document.
SERVE_EVENT_SCHEMA = "repro.serve-event/1"

#: Event kinds, in the order a clean run produces them.
_KINDS = ("stage", "tile", "final")


def _array_doc(arr: np.ndarray) -> dict[str, Any]:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _array_from_doc(doc: dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(doc["data"])
    return np.frombuffer(raw, dtype=np.dtype(doc["dtype"])).reshape(
        tuple(int(v) for v in doc["shape"])
    ).copy()


def _rect_doc(rect: Optional[Rect]) -> Optional[list[int]]:
    return None if rect is None else [rect.y0, rect.x0, rect.y1, rect.x1]


def _rect_from_doc(doc) -> Optional[Rect]:
    return None if doc is None else Rect(*(int(v) for v in doc))


@dataclass
class ProgressEvent:
    """One streamed partial-frame update.

    ``kind`` is ``"stage"`` (full-frame planes, valid on ``part_rect``
    or ``part_indices`` — the rank's keep part after exchange stage
    ``stage``), ``"tile"`` (tile-shaped planes holding ``rect``'s final
    pixels), or ``"final"`` (the assembled display image, flagged with
    the run's outcome).  ``t`` is substrate seconds since the producing
    engine started; ``coverage`` is the feed's monotone settled-fraction
    estimate at emission time.
    """

    seq: int
    kind: str
    rank: int
    t: float
    coverage: float
    intensity: np.ndarray
    opacity: np.ndarray
    stage: Optional[int] = None
    #: Position of ``stage`` in the schedule (0-based) and stage total.
    ordinal: Optional[int] = None
    num_stages: Optional[int] = None
    tile: Optional[int] = None
    #: Tile events: the frame rect the planes cover.
    rect: Optional[Rect] = None
    #: Stage events: the keep part the planes are valid on.
    part_rect: Optional[Rect] = None
    part_indices: Optional[np.ndarray] = None
    #: Final events: the declared outcome and its degradation flag.
    degraded: bool = False
    outcome: Optional[str] = None

    def to_dict(
        self, *, job_id: Optional[str] = None, session: Optional[str] = None
    ) -> dict[str, Any]:
        """Export as a ``repro.serve-event/1`` document."""
        doc: dict[str, Any] = {
            "schema": SERVE_EVENT_SCHEMA,
            "seq": self.seq,
            "kind": self.kind,
            "rank": self.rank,
            "t": self.t,
            "coverage": self.coverage,
            "stage": self.stage,
            "ordinal": self.ordinal,
            "num_stages": self.num_stages,
            "tile": self.tile,
            "rect": _rect_doc(self.rect),
            "part_rect": _rect_doc(self.part_rect),
            "part_indices": (
                None if self.part_indices is None else _array_doc(self.part_indices)
            ),
            "degraded": self.degraded,
            "outcome": self.outcome,
            "intensity": _array_doc(self.intensity),
            "opacity": _array_doc(self.opacity),
        }
        if job_id is not None:
            doc["job_id"] = job_id
        if session is not None:
            doc["session"] = session
        return doc


def serve_event_from_dict(doc: dict[str, Any]) -> ProgressEvent:
    """Rebuild a :class:`ProgressEvent` from its streamed document."""
    from ..errors import ConfigurationError

    schema = doc.get("schema")
    if schema != SERVE_EVENT_SCHEMA:
        raise ConfigurationError(
            f"unsupported serve-event schema {schema!r} "
            f"(expected {SERVE_EVENT_SCHEMA!r})"
        )
    part_indices = doc.get("part_indices")
    return ProgressEvent(
        seq=int(doc["seq"]),
        kind=str(doc["kind"]),
        rank=int(doc["rank"]),
        t=float(doc["t"]),
        coverage=float(doc["coverage"]),
        intensity=_array_from_doc(doc["intensity"]),
        opacity=_array_from_doc(doc["opacity"]),
        stage=None if doc.get("stage") is None else int(doc["stage"]),
        ordinal=None if doc.get("ordinal") is None else int(doc["ordinal"]),
        num_stages=(
            None if doc.get("num_stages") is None else int(doc["num_stages"])
        ),
        tile=None if doc.get("tile") is None else int(doc["tile"]),
        rect=_rect_from_doc(doc.get("rect")),
        part_rect=_rect_from_doc(doc.get("part_rect")),
        part_indices=None if part_indices is None else _array_from_doc(part_indices),
        degraded=bool(doc.get("degraded", False)),
        outcome=doc.get("outcome"),
    )


@dataclass
class ProgressFeed:
    """Live, ordered stream of :class:`ProgressEvent` for one render job.

    Install on the run via ``SortLastSystem.run(progress=feed)`` (or a
    :class:`~repro.pipeline.session.RenderJob`); consume with
    :meth:`stream` from another thread, or read :attr:`events` after the
    run.  The producer side (`emit_*`) is driven by the compositing
    engines; :meth:`close` ends the stream.
    """

    events: list[ProgressEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cond = threading.Condition()
        self._closed = False
        self._coverage = 0.0
        # Deadline enforcement hook: an absolute time.monotonic() point
        # set by the serving layer (set_deadline).  Checked on every
        # producer-side emit — the engines call emit_stage/emit_tile at
        # exactly their checkpoint/tile boundaries, so an expired
        # deadline aborts the run at the next boundary without adding
        # any new hook surface to the engines themselves.
        self._deadline_at: "float | None" = None
        self._deadline_s: "float | None" = None
        # Stage accounting: rank -> completed-stage count (this attempt).
        self._stage_done: dict[int, int] = {}
        self._stage_total: Optional[int] = None
        self._num_ranks: Optional[int] = None
        # Tile accounting: settled pixels (this attempt).
        self._tile_pixels = 0
        self._frame_pixels: Optional[int] = None

    # ---- consumer side -----------------------------------------------------
    @property
    def coverage(self) -> float:
        """The latest (monotone) settled-fraction estimate."""
        with self._cond:
            return self._coverage

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def stream(self, timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield events in order, blocking for new ones until closed.

        ``timeout`` bounds each wait for the *next* event; expiry ends
        the stream early (a serving front end's liveness guard).
        """
        index = 0
        while True:
            with self._cond:
                while index >= len(self.events) and not self._closed:
                    if not self._cond.wait(timeout):
                        return
                if index >= len(self.events):
                    return  # closed and drained
                event = self.events[index]
            index += 1
            yield event

    def close(self) -> None:
        """End the stream; pending :meth:`stream` consumers drain and stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def set_deadline(self, deadline_at: "float | None",
                     deadline_s: "float | None" = None) -> None:
        """Arm (or clear) the feed's deadline.

        ``deadline_at`` is an absolute ``time.monotonic()`` instant; once
        it passes, the next ``stage``/``tile`` emission raises
        :class:`~repro.errors.DeadlineExceededError` *inside the engine*,
        aborting the run at a checkpoint/tile boundary.  ``final``
        emissions are exempt: if the display image already exists,
        delivering it beats dropping it.  ``deadline_s`` is the original
        budget, carried into the error for reporting.
        """
        with self._cond:
            self._deadline_at = deadline_at
            self._deadline_s = deadline_s

    # ---- producer side -----------------------------------------------------
    def _coverage_candidate(self) -> float:
        parts: list[float] = []
        if self._stage_total and self._num_ranks:
            parts.append(
                sum(self._stage_done.values())
                / float(self._stage_total * self._num_ranks)
            )
        if self._frame_pixels:
            parts.append(self._tile_pixels / float(self._frame_pixels))
        return max(parts, default=0.0)

    def _append(self, event_kind: str, coverage: Optional[float] = None, **fields) -> ProgressEvent:
        with self._cond:
            if event_kind != "final" and self._deadline_at is not None:
                now = time.monotonic()
                if now >= self._deadline_at:
                    budget = self._deadline_s
                    raise DeadlineExceededError(
                        "job ran past its deadline"
                        + (f" of {budget}s" if budget is not None else "")
                        + f" (checked at a {event_kind} boundary)",
                        deadline_s=budget,
                        elapsed=(
                            None if budget is None
                            else budget + (now - self._deadline_at)
                        ),
                    )
            candidate = self._coverage_candidate() if coverage is None else coverage
            self._coverage = max(self._coverage, min(1.0, candidate))
            event = ProgressEvent(
                seq=len(self.events),
                kind=event_kind,
                coverage=self._coverage,
                **fields,
            )
            self.events.append(event)
            self._cond.notify_all()
            return event

    def emit_stage(
        self,
        *,
        rank: int,
        stage: int,
        ordinal: int,
        num_stages: int,
        num_ranks: int,
        part,
        image,
        t: float,
    ) -> ProgressEvent:
        """One completed exchange stage on one rank (engine-driven).

        ``image`` is the engine's live full-frame :class:`SubImage`;
        the feed copies both planes *here*, at exactly the point the
        recovery layer would pickle a
        :class:`~repro.cluster.recovery.CheckpointSnapshot` — which is
        what makes streamed stage frames bit-identical to checkpoints.
        ``part`` is the schedule's keep part (rect- or index-shaped).
        """
        part_rect = getattr(part, "rect", None)
        part_indices = getattr(part, "indices", None)
        with self._cond:
            self._stage_total = int(num_stages)
            self._num_ranks = int(num_ranks)
            done = self._stage_done.get(rank, 0)
            self._stage_done[rank] = max(done, int(ordinal) + 1)
        return self._append(
            "stage",
            rank=rank,
            stage=int(stage),
            ordinal=int(ordinal),
            num_stages=int(num_stages),
            part_rect=part_rect,
            part_indices=None if part_indices is None else np.array(part_indices),
            intensity=image.intensity.copy(),
            opacity=image.opacity.copy(),
            t=float(t),
        )

    def emit_tile(
        self,
        *,
        rank: int,
        tile: int,
        rect: Rect,
        intensity: np.ndarray,
        opacity: np.ndarray,
        frame_pixels: int,
        t: float,
    ) -> ProgressEvent:
        """One completed tile on its owner rank (tile-engine-driven).

        ``intensity``/``opacity`` are the tile's final pixel planes
        (shape ``rect.height x rect.width``); copied here.
        """
        with self._cond:
            self._frame_pixels = int(frame_pixels)
            self._tile_pixels += rect.area
        return self._append(
            "tile",
            rank=rank,
            tile=int(tile),
            rect=rect,
            intensity=np.array(intensity, copy=True),
            opacity=np.array(opacity, copy=True),
            t=float(t),
        )

    def emit_final(
        self,
        *,
        image,
        degraded: bool = False,
        outcome: Optional[str] = None,
        t: float = 0.0,
    ) -> ProgressEvent:
        """The assembled display image (system-layer-driven, rank 0)."""
        return self._append(
            "final",
            coverage=1.0,
            rank=0,
            degraded=bool(degraded),
            outcome=outcome,
            intensity=image.intensity.copy(),
            opacity=image.opacity.copy(),
            t=float(t),
        )

    def reset_attempt(self) -> None:
        """Start a fresh accounting attempt (recovery re-run).

        Clears the per-attempt stage/tile accumulators but keeps the
        event log, the sequence numbers, and the monotone coverage —
        a degraded re-run streams new frames without ever reporting
        regressed coverage.
        """
        with self._cond:
            self._stage_done.clear()
            self._stage_total = None
            self._num_ranks = None
            self._tile_pixels = 0
            self._frame_pixels = None
