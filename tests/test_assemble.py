"""The single shared final-image assembly routine (rect/index/mixed)."""

import numpy as np
import pytest

from repro.compositing.base import CompositeOutcome
from repro.errors import CompositingError
from repro.pipeline.assemble import (
    OwnedTile,
    assemble_outcomes,
    assemble_tiles,
    tile_from_outcome,
)
from repro.render.image import SubImage
from repro.types import Rect


def _image_with(values: float, height: int = 6, width: int = 8) -> SubImage:
    img = SubImage.blank(height, width)
    img.intensity[:] = values
    img.opacity[:] = values / 2.0
    return img


class TestAssembleTiles:
    def test_rect_tiles_scatter_their_block(self):
        top = OwnedTile(Rect(0, 0, 3, 8), None, np.full(24, 0.5), np.full(24, 0.25))
        bottom = OwnedTile(Rect(3, 0, 6, 8), None, np.full(24, 0.9), np.full(24, 0.45))
        final = assemble_tiles([top, bottom], 6, 8)
        assert np.all(final.intensity[:3] == 0.5)
        assert np.all(final.intensity[3:] == 0.9)
        assert np.all(final.opacity[:3] == 0.25)

    def test_index_tiles_scatter_their_positions(self):
        idx_even = np.arange(0, 48, 2)
        idx_odd = np.arange(1, 48, 2)
        tiles = [
            OwnedTile(None, idx_even, np.full(24, 0.2), np.full(24, 0.1)),
            OwnedTile(None, idx_odd, np.full(24, 0.8), np.full(24, 0.4)),
        ]
        final = assemble_tiles(tiles, 6, 8)
        flat = final.intensity.ravel()
        assert np.all(flat[idx_even] == 0.2) and np.all(flat[idx_odd] == 0.8)

    def test_mixed_rect_and_index_tiles(self):
        rect = Rect(0, 0, 3, 8)
        indices = np.arange(24, 48)  # the bottom half, flat
        tiles = [
            OwnedTile(rect, None, np.full(24, 0.7), np.full(24, 0.35)),
            OwnedTile(None, indices, np.full(24, 0.3), np.full(24, 0.15)),
        ]
        final = assemble_tiles(tiles, 6, 8)
        assert np.all(final.intensity[:3] == 0.7)
        assert np.all(final.intensity[3:] == 0.3)

    def test_empty_rect_contributes_nothing(self):
        empty = OwnedTile(Rect(2, 2, 2, 2), None, np.empty(0), np.empty(0))
        final = assemble_tiles([empty], 6, 8)
        assert np.all(final.intensity == 0.0)

    def test_rect_values_are_row_major(self):
        values = np.arange(6, dtype=np.float64)
        tile = OwnedTile(Rect(1, 1, 3, 4), None, values, values * 2)
        final = assemble_tiles([tile], 6, 8)
        assert np.array_equal(final.intensity[1:3, 1:4], values.reshape(2, 3))


class TestTileFromOutcome:
    def test_rect_outcome_roundtrip(self):
        img = _image_with(0.6)
        outcome = CompositeOutcome(image=img, owned_rect=Rect(2, 3, 5, 7))
        tile = tile_from_outcome(outcome)
        assert tile.owned_rect == Rect(2, 3, 5, 7) and tile.owned_indices is None
        assert tile.values_i.shape == (12,) and np.all(tile.values_i == 0.6)

    def test_index_outcome_roundtrip(self):
        img = _image_with(0.4)
        indices = np.array([0, 5, 17, 40])
        outcome = CompositeOutcome(image=img, owned_indices=indices)
        tile = tile_from_outcome(outcome)
        assert tile.owned_rect is None
        assert np.array_equal(tile.owned_indices, indices)
        assert np.all(tile.values_a == 0.2)

    def test_assemble_outcomes_equals_manual_scatter(self):
        imgs = [_image_with(0.3), _image_with(0.9)]
        outcomes = [
            CompositeOutcome(image=imgs[0], owned_rect=Rect(0, 0, 6, 4)),
            CompositeOutcome(image=imgs[1], owned_rect=Rect(0, 4, 6, 8)),
        ]
        final = assemble_outcomes(outcomes, 6, 8)
        assert np.all(final.intensity[:, :4] == 0.3)
        assert np.all(final.intensity[:, 4:] == 0.9)


class TestOutcomeInvariant:
    def test_exactly_one_ownership_form(self):
        img = _image_with(0.1)
        with pytest.raises(CompositingError):
            CompositeOutcome(image=img)
        with pytest.raises(CompositingError):
            CompositeOutcome(
                image=img, owned_rect=Rect(0, 0, 1, 1), owned_indices=np.array([0])
            )
