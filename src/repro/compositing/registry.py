"""Name → compositor factory registry.

The experiment harness, CLI and examples refer to methods by their paper
names (``bs``, ``bsbr``, ``bslc``, ``bsbrc``) plus the related-work
baselines implemented as extensions (``direct``, ``tree``,
``pipeline``).  Factories accept the method's keyword options so
ablations (split policy, section size) route through the same interface.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from .base import Compositor

__all__ = ["register", "make_compositor", "available_methods", "PAPER_METHODS"]

_REGISTRY: dict[str, Callable[..., Compositor]] = {}

#: The four methods evaluated in the paper's tables, in table order.
PAPER_METHODS = ("bs", "bsbr", "bslc", "bsbrc")


def register(name: str, factory: Callable[..., Compositor]) -> None:
    """Register a compositor factory under ``name`` (lowercase)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"compositor {name!r} already registered")
    _REGISTRY[key] = factory


def make_compositor(name: str, **options) -> Compositor:
    """Instantiate a registered compositor by name."""
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown compositing method {name!r}; available: {available_methods()}"
        )
    return factory(**options)


def available_methods() -> list[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from .bs import BinarySwap
    from .bsbr import BinarySwapBoundingRect
    from .bsbrc import BinarySwapBoundingRectCompression
    from .bslc import BinarySwapLoadBalancedCompression

    register("bs", BinarySwap)
    register("bsbr", BinarySwapBoundingRect)
    register("bslc", BinarySwapLoadBalancedCompression)
    register("bsbrc", BinarySwapBoundingRectCompression)

    from .bslc_value import BinarySwapValueCompression

    register("bslcv", BinarySwapValueCompression)

    from .baselines import (
        BinaryTreeCompression,
        DirectSend,
        DirectSendAsync,
        ParallelPipeline,
    )

    register("direct", DirectSend)
    register("direct-async", DirectSendAsync)
    register("tree", BinaryTreeCompression)
    register("pipeline", ParallelPipeline)


_register_builtins()
