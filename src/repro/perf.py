"""Lightweight performance counters and timers for the hot paths.

The renderer, the codecs and the experiment harness account their work
here so that benchmarks (``benchmarks/bench_hotpaths.py``) and curious
users can see *where* time and bytes go without attaching a profiler.

Design constraints:

* **Near-zero overhead when idle.**  Counters are plain dict adds and
  are bumped at call/chunk granularity, never per pixel or per sample
  element.  Timers call ``time.perf_counter``/``time.process_time``
  twice per timed region, so they wrap whole renders or harness stages,
  not inner loops.
* **Context-scoped, explicitly resettable.**  Counts land in the
  *current* :class:`PerfRegistry` — a process-wide default unless a
  :func:`scope` is active.  The module-level API keeps its three verbs
  (:func:`incr`, :func:`timer`, :func:`report`, plus :func:`reset`)
  and, with no scope in play, behaves exactly like the old
  process-global registry.  A render service running several sessions
  concurrently gives each run its own registry via ``with
  perf.scope(...):`` so sessions never interleave each other's
  counters (the scope is a :mod:`contextvars` binding, so it is
  thread- and task-local).

Example
-------
>>> from repro import perf
>>> perf.reset()
>>> with perf.timer("render"):
...     perf.incr("rays", 1024)
>>> rep = perf.report()
>>> rep["counters"]["rays"]
1024

Scoped example — the outer registry never sees the inner counts::

>>> with perf.scope() as inner:
...     perf.incr("rays", 7)
...     assert perf.counter("rays") == 7
>>> inner.counter("rays")
7
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "PerfRegistry",
    "incr",
    "timer",
    "counter",
    "report",
    "reset",
    "format_report",
    "scope",
    "current",
]


class PerfRegistry:
    """One independent set of counters and timers.

    Instances are cheap; a long-lived service makes one per render job
    so concurrent runs account separately.  All methods mirror the
    module-level API.
    """

    __slots__ = ("_counters", "_timers")

    def __init__(self) -> None:
        #: name -> accumulated count (ints or floats).
        self._counters: dict[str, float] = {}
        #: name -> [wall_seconds, cpu_seconds, calls].
        self._timers: dict[str, list[float]] = {}

    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters.get(name, 0)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall and CPU time of the ``with`` body under ``name``."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall1 = time.perf_counter()
            cpu1 = time.process_time()
            slot = self._timers.get(name)
            if slot is None:
                slot = [0.0, 0.0, 0]
                self._timers[name] = slot
            slot[0] += wall1 - wall0
            slot[1] += cpu1 - cpu0
            slot[2] += 1

    def report(self) -> dict:
        """Snapshot of all counters and timers (JSON-serializable)."""
        return {
            "counters": dict(self._counters),
            "timers": {
                name: {"wall_s": slot[0], "cpu_s": slot[1], "calls": slot[2]}
                for name, slot in self._timers.items()
            },
        }

    def reset(self) -> None:
        """Zero every counter and timer."""
        self._counters.clear()
        self._timers.clear()

    def format_report(self) -> str:
        """Human-readable one-line-per-entry rendering of :meth:`report`."""
        lines = ["perf counters:"]
        if not self._counters and not self._timers:
            return "perf counters: (empty)"
        for name in sorted(self._counters):
            value = self._counters[name]
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:40s} {shown}")
        if self._timers:
            lines.append("perf timers:")
            for name in sorted(self._timers):
                wall, cpu, calls = self._timers[name]
                lines.append(
                    f"  {name:40s} wall {wall * 1e3:10.2f} ms  "
                    f"cpu {cpu * 1e3:10.2f} ms  calls {calls}"
                )
        return "\n".join(lines)


#: The process-wide default registry: the module API targets this one
#: whenever no :func:`scope` is active — the pre-scoping behaviour.
_DEFAULT = PerfRegistry()

_CURRENT: contextvars.ContextVar[PerfRegistry] = contextvars.ContextVar(
    "repro-perf-registry", default=_DEFAULT
)


def current() -> PerfRegistry:
    """The registry the module-level verbs target right now."""
    return _CURRENT.get()


@contextmanager
def scope(registry: Optional[PerfRegistry] = None) -> Iterator[PerfRegistry]:
    """Route the module-level API into ``registry`` for the ``with`` body.

    ``None`` makes a fresh empty registry.  Scopes nest, and the binding
    is contextvar-local: two threads (or asyncio tasks) holding
    different scopes account independently — that is what keeps
    concurrent render sessions from interleaving counters.
    """
    target = registry if registry is not None else PerfRegistry()
    token = _CURRENT.set(target)
    try:
        yield target
    finally:
        _CURRENT.reset(token)


def incr(name: str, amount: float = 1) -> None:
    """Add ``amount`` to counter ``name`` in the current registry."""
    current().incr(name, amount)


def counter(name: str) -> float:
    """Current value of counter ``name`` (0 if never bumped)."""
    return current().counter(name)


def timer(name: str):
    """Accumulate wall and CPU time of the ``with`` body under ``name``."""
    return current().timer(name)


def report() -> dict:
    """Snapshot of the current registry (JSON-serializable)."""
    return current().report()


def reset() -> None:
    """Zero every counter and timer of the current registry."""
    current().reset()


def format_report() -> str:
    """Human-readable rendering of the current registry's :func:`report`."""
    return current().format_report()
