"""Tests for the splatting renderer (paper future-work extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RenderError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem
from repro.render.camera import Camera
from repro.render.raycast import render_full
from repro.render.reference import composite_sequential
from repro.render.splat import dominant_axis, splat_full, splat_subvolume
from repro.types import Extent3
from repro.volume.datasets import make_dataset
from repro.volume.partition import depth_order, recursive_bisect


def camera_for(volume, size=64, **kwargs):
    return Camera(width=size, height=size, volume_shape=volume.shape, **kwargs)


class TestDominantAxis:
    def test_axis_aligned(self):
        assert dominant_axis(np.array([0.0, 0.0, -1.0])) == 2
        assert dominant_axis(np.array([1.0, 0.0, 0.0])) == 0

    def test_oblique(self):
        assert dominant_axis(np.array([0.3, -0.8, 0.4])) == 1


class TestSplatBasics:
    def test_sphere_renders_centered(self):
        volume, transfer = make_dataset("sphere", (32, 32, 32))
        cam = camera_for(volume, rot_x=20, rot_y=30)
        image = splat_full(volume, transfer, cam)
        assert image.nonblank_count() > 0
        rect = image.bounding_rect()
        assert abs((rect.y0 + rect.y1) / 2 - cam.height / 2) < 4
        assert abs((rect.x0 + rect.x1) / 2 - cam.width / 2) < 4

    def test_opacity_bounded(self):
        volume, transfer = make_dataset("engine_low", (32, 32, 16))
        image = splat_full(volume, transfer, camera_for(volume, rot_x=25))
        assert float(image.opacity.min()) >= 0.0
        assert float(image.opacity.max()) <= 1.0

    def test_empty_extent_blank(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        image = splat_subvolume(
            volume, transfer, camera_for(volume), Extent3(0, 0, 0, 0, 16, 16)
        )
        assert image.nonblank_count() == 0

    def test_deterministic(self):
        volume, transfer = make_dataset("head", (24, 24, 12))
        cam = camera_for(volume, rot_x=40)
        a = splat_full(volume, transfer, cam)
        b = splat_full(volume, transfer, cam)
        assert np.array_equal(a.intensity, b.intensity)

    def test_camera_mismatch_rejected(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        cam = Camera(width=32, height=32, volume_shape=(8, 8, 8))
        with pytest.raises(RenderError):
            splat_full(volume, transfer, cam)

    def test_bad_sigma_rejected(self):
        volume, transfer = make_dataset("sphere", (16, 16, 16))
        with pytest.raises(RenderError):
            splat_full(volume, transfer, camera_for(volume), kernel_sigma=0.0)

    def test_roughly_agrees_with_raycast(self):
        """Different algorithms, same scene: footprints must overlap
        substantially and total energy be comparable."""
        volume, transfer = make_dataset("sphere", (32, 32, 32))
        cam = camera_for(volume, rot_x=20, rot_y=30)
        splat = splat_full(volume, transfer, cam)
        ray = render_full(volume, transfer, cam)
        # Compare *significant* coverage: the Gaussian kernel gives splat
        # a faint halo of extra barely-nonblank pixels by design.
        sig_splat = splat.opacity > 0.05
        sig_ray = ray.opacity > 0.05
        overlap = (sig_splat & sig_ray).sum() / max(1, (sig_splat | sig_ray).sum())
        assert overlap > 0.6
        ratio = splat.opacity.sum() / ray.opacity.sum()
        assert 0.4 < ratio < 2.5


class TestSplatBlockComposite:
    @pytest.mark.parametrize("dataset", ["sphere", "engine_high"])
    def test_blocks_approximate_full(self, dataset):
        """Sort-last splatting's known seam artifact stays bounded: tiny
        mean error, modest max at block boundaries (kernel spill)."""
        volume, transfer = make_dataset(dataset, (32, 32, 16))
        cam = camera_for(volume, rot_x=20, rot_y=30)
        plan = recursive_bisect(volume.shape, 8)
        subimages = [
            splat_subvolume(volume, transfer, cam, plan.extent(r)) for r in range(8)
        ]
        combined = composite_sequential(subimages, depth_order(plan, cam.view_dir))
        full = splat_full(volume, transfer, cam)
        diff = np.abs(combined.intensity - full.intensity)
        assert diff.max() < 0.12
        assert diff.mean() < 2e-3

    def test_dominant_axis_splits_are_exact(self):
        """Blocks cut only along the sheet normal have no kernel spill:
        the composite equals the full splat to float precision."""
        volume, transfer = make_dataset("sphere", (32, 32, 32))
        cam = camera_for(volume)  # view down -z, dominant axis = 2
        full_extent = volume.full_extent()
        low, high = full_extent.split(2)
        sub_low = splat_subvolume(volume, transfer, cam, low)
        sub_high = splat_subvolume(volume, transfer, cam, high)
        # view_dir = -z: high-z half is in front.
        combined = composite_sequential([sub_low, sub_high], [1, 0])
        full = splat_full(volume, transfer, cam)
        assert combined.max_abs_diff(full) < 1e-12


class TestSplatPipeline:
    def test_renderer_option_validated(self):
        with pytest.raises(ConfigurationError):
            RunConfig(renderer="raytrace")

    @pytest.mark.parametrize("method", ["bs", "bsbrc"])
    def test_end_to_end_with_splat(self, method):
        """Compositing correctness is renderer-independent: the parallel
        composite of splat subimages equals their sequential composite."""
        cfg = RunConfig(
            dataset="engine_high",
            method=method,
            num_ranks=8,
            image_size=48,
            volume_shape=(32, 32, 16),
            renderer="splat",
        )
        result = SortLastSystem(cfg).run()
        assert result.final_image.max_abs_diff(result.reference_image()) < 1e-9

    def test_splat_and_raycast_give_different_images(self):
        base = RunConfig(
            dataset="sphere", method="bsbrc", num_ranks=4,
            image_size=48, volume_shape=(32, 32, 32),
        )
        ray = SortLastSystem(base).run().final_image
        splat = SortLastSystem(base.with_(renderer="splat")).run().final_image
        assert ray.max_abs_diff(splat) > 1e-3
