"""Evaluation metrics matching the paper's §4.

* ``T_comp`` / ``T_comm`` / ``T_total`` — compositing-phase times of the
  critical rank (the rank with the largest total), keeping the table's
  columns additive like the paper's.
* ``M_max`` — maximum over ranks of total received bytes
  (``M_max = MAX_i Σ_k R_i^k``), computed from the *accounted* wire
  sizes of the real serialized messages.
* :func:`check_mmax_ordering` — the paper's eq. (9):
  ``M_max(BS) ≥ M_max(BSBR) ≥ M_max(BSBRC) ≥ M_max(BSLC)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.stats import RunResult

__all__ = ["MethodMeasurement", "measure", "check_mmax_ordering", "speedup"]


@dataclass(frozen=True)
class MethodMeasurement:
    """One row of Table 1 / Table 2: a (method, workload) measurement."""

    method: str
    dataset: str
    image_size: int
    num_ranks: int
    t_comp: float
    t_comm: float
    mmax_bytes: int
    makespan: float
    bytes_total: int
    pixels_composited: int
    pixels_encoded: int

    @property
    def t_total(self) -> float:
        return self.t_comp + self.t_comm

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "image_size": self.image_size,
            "num_ranks": self.num_ranks,
            "t_comp": self.t_comp,
            "t_comm": self.t_comm,
            "t_total": self.t_total,
            "mmax_bytes": self.mmax_bytes,
            "makespan": self.makespan,
            "bytes_total": self.bytes_total,
            "pixels_composited": self.pixels_composited,
            "pixels_encoded": self.pixels_encoded,
        }

    @staticmethod
    def from_dict(data: dict) -> "MethodMeasurement":
        fields = dict(data)
        fields.pop("t_total", None)
        return MethodMeasurement(**fields)


def measure(
    stats: RunResult,
    *,
    method: str,
    dataset: str,
    image_size: int,
) -> MethodMeasurement:
    """Reduce a compositing-phase :class:`RunResult` to one table row."""
    return MethodMeasurement(
        method=method,
        dataset=dataset,
        image_size=image_size,
        num_ranks=stats.num_ranks,
        t_comp=stats.t_comp,
        t_comm=stats.t_comm,
        mmax_bytes=stats.mmax_bytes,
        makespan=stats.makespan,
        bytes_total=sum(rs.bytes_recv for rs in stats.rank_stats),
        pixels_composited=stats.counter_total("over"),
        pixels_encoded=stats.counter_total("encode"),
    )


def check_mmax_ordering(
    mmax: dict[str, int], *, tolerance_bytes: int = 0, rel_tolerance: float = 0.0
) -> list[str]:
    """Verify the paper's eq. (9) ordering on a ``{method: M_max}`` dict.

    Returns a list of human-readable violations (empty = ordering holds).
    ``tolerance_bytes`` / ``rel_tolerance`` allow slack: the paper states
    the ordering holds "in general", and the BSBRC/BSLC leg can flip by a
    few percent of run-length-code overhead on dense images.
    """
    order = ("bs", "bsbr", "bsbrc", "bslc")
    present = [m for m in order if m in mmax]
    violations: list[str] = []
    for left, right in zip(present, present[1:]):
        slack = tolerance_bytes + int(rel_tolerance * mmax[right])
        if mmax[left] + slack < mmax[right]:
            violations.append(
                f"M_max({left})={mmax[left]} < M_max({right})={mmax[right]}"
            )
    return violations


def speedup(t_baseline: float, t_method: float) -> float:
    """How many times faster than the baseline (> 1 means faster)."""
    if t_method <= 0:
        raise ValueError(f"t_method must be > 0, got {t_method}")
    return t_baseline / t_method
