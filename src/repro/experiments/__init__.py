"""Experiment harness regenerating every table and figure of the paper."""

from .compare import FidelityReport, compare_to_paper, format_fidelity
from .figures import FIGURE_DATASETS, format_figure, render_figure7, run_figures
from .harness import (
    DEFAULT_ROTATION,
    RenderedWorkload,
    clear_workload_cache,
    load_rows,
    rows_from_json,
    rows_to_json,
    run_grid,
    run_method,
    save_rows,
    workload,
)
from .mmax import MmaxReport, format_mmax, run_mmax
from .paper_data import PAPER_TABLE1, PAPER_TABLE2, PaperCell, paper_cell
from .rotation import RotationObservation, format_rotation, run_rotation
from .stages import StageBreakdown, format_stage_breakdown, run_stage_breakdown
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2

__all__ = [
    "DEFAULT_ROTATION",
    "FIGURE_DATASETS",
    "FidelityReport",
    "MmaxReport",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PaperCell",
    "RenderedWorkload",
    "RotationObservation",
    "StageBreakdown",
    "clear_workload_cache",
    "compare_to_paper",
    "format_fidelity",
    "format_figure",
    "format_mmax",
    "format_rotation",
    "format_stage_breakdown",
    "format_table1",
    "format_table2",
    "load_rows",
    "paper_cell",
    "render_figure7",
    "rows_from_json",
    "rows_to_json",
    "run_figures",
    "run_grid",
    "run_method",
    "run_mmax",
    "run_rotation",
    "run_stage_breakdown",
    "run_table1",
    "run_table2",
    "save_rows",
    "workload",
]
