"""Execution-timeline tooling for the simulated cluster.

Turns a traced :class:`~repro.cluster.simulator.Simulator` run into

* a per-rank **ASCII Gantt chart** showing when each rank computed,
  transferred, and waited (great for *seeing* the load imbalance the
  BSLC interleaving removes), and
* a JSON-serializable event list for external tooling.

Time is bucketed into fixed columns; within a bucket, compute wins over
transfer wins over wait for display purposes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..cluster.simulator import TraceEvent
from ..cluster.stats import RunResult

__all__ = ["Interval", "intervals_from_stats", "ascii_gantt", "trace_to_json"]

_GLYPH = {"compute": "#", "comm": "=", "wait": "."}


@dataclass(frozen=True)
class Interval:
    """One activity span of one rank."""

    rank: int
    kind: str  # "compute" | "comm" | "wait"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def intervals_from_stats(result: RunResult) -> list[Interval]:
    """Reconstruct per-rank activity intervals from stage stats.

    Stages are replayed in stage order; within a stage the model is
    compute → wait → transfer (how the swap methods actually behave:
    local work, then the rendezvous, then the wire).  This gives an
    accurate picture without requiring a full event trace.
    """
    intervals: list[Interval] = []
    for rank_stats in result.rank_stats:
        clock = 0.0
        for stage in rank_stats.sorted_stages():
            for kind, duration in (
                ("compute", stage.comp_time),
                ("wait", stage.wait_time),
                ("comm", stage.comm_time),
            ):
                if duration > 0:
                    intervals.append(
                        Interval(rank=rank_stats.rank, kind=kind, start=clock,
                                 end=clock + duration)
                    )
                    clock += duration
    return intervals


def ascii_gantt(
    result: RunResult,
    *,
    width: int = 72,
    title: str = "",
) -> str:
    """Render a per-rank activity chart from a run's stats.

    ``#`` compute · ``=`` transfer · ``.`` waiting for a partner.
    """
    intervals = intervals_from_stats(result)
    span = max((iv.end for iv in intervals), default=0.0)
    if span <= 0.0:
        return (title + "\n" if title else "") + "(no recorded activity)"

    rows: dict[int, list[str]] = {
        rank: [" "] * width for rank in range(result.num_ranks)
    }
    for iv in intervals:
        col0 = int(iv.start / span * (width - 1))
        col1 = max(col0, int(iv.end / span * (width - 1)))
        glyph = _GLYPH[iv.kind]
        row = rows[iv.rank]
        for col in range(col0, col1 + 1):
            # Precedence: compute > comm > wait > blank.
            current = row[col]
            if current == "#":
                continue
            if current == "=" and glyph == ".":
                continue
            row[col] = glyph

    out: list[str] = []
    if title:
        out.append(title)
    out.append(f"0 {'-' * (width - 10)} {span * 1e3:.2f} ms")
    for rank in range(result.num_ranks):
        out.append(f"r{rank:02d} |{''.join(rows[rank])}|")
    out.append("legend: # compute   = transfer   . waiting")
    return "\n".join(out)


def trace_to_json(events: list[TraceEvent]) -> str:
    """Serialize raw simulator trace events for external tools."""
    return json.dumps(
        [
            {"time": e.time, "rank": e.rank, "kind": e.kind, "detail": e.detail}
            for e in events
        ],
        indent=2,
    )
