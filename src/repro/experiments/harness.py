"""Experiment harness: render once, composite many ways.

Rendering dominates wall time, so the harness renders each workload
*once* at the finest partition (``max_ranks`` blocks, cropped to their
screen footprints) and assembles per-rank subimages for any smaller
power-of-two ``P`` by compositing the rank's blocks front-to-back.
Because every block is sampled on the camera's global ``t`` grid and
*over* is associative, the assembled subimage equals a direct render of
the rank's subvolume to float rounding (property-tested in
``tests/test_harness.py``).

Two cache levels back the render-once discipline:

* an **in-process** dict (``workload(...)``), as before, and
* an optional **on-disk** cache shared *across* processes: set the
  ``REPRO_CACHE_DIR`` environment variable (or pass ``cache_dir=``) and
  rendered block sets are stored as ``.npz`` keyed by a SHA-256 content
  hash of (cache version, renderer, dataset, image size, viewpoint,
  volume shape, step, max_ranks).  Repeat benchmark / CLI runs then skip
  the render phase entirely.  The cache is off by default, so tests
  never read stale pixels; bump ``_CACHE_VERSION`` when the renderer
  output changes intentionally.

Results are plain :class:`~repro.analysis.metrics.MethodMeasurement`
rows with JSON persistence so EXPERIMENTS.md can be regenerated without
re-running.
"""

from __future__ import annotations

import hashlib
import json
import os
from zipfile import BadZipFile as zipfile_error
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .. import perf
from ..analysis.metrics import MethodMeasurement, measure
from ..cache import enforce_cache_budget, touch
from ..cluster.model import SP2, MachineModel
from ..cluster.topology import is_power_of_two, log2_int
from ..compositing.base import composite_rect_pixels
from ..errors import ConfigurationError
from ..pipeline.system import CompositingRun, run_compositing
from ..render.camera import Camera
from ..render.image import SubImage
from ..render.raycast import render_subvolume
from ..types import Rect
from ..volume.datasets import make_dataset
from ..volume.partition import PartitionPlan, recursive_bisect

__all__ = [
    "RenderedWorkload",
    "workload",
    "clear_workload_cache",
    "render_cache_dir",
    "CACHE_ENV",
    "run_method",
    "run_grid",
    "rows_to_json",
    "rows_from_json",
    "save_rows",
    "load_rows",
]

#: Default viewpoint used by the tables (a generic two-axis rotation so
#: subimage footprints overlap, as in the paper's experiments).
DEFAULT_ROTATION = (20.0, 30.0, 0.0)

#: Environment variable naming the on-disk render cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Bump whenever the renderer's output or the cache layout changes.
_CACHE_VERSION = 1


def render_cache_dir() -> str | None:
    """Active on-disk cache directory, or ``None`` when caching is off."""
    value = os.environ.get(CACHE_ENV, "").strip()
    return value or None


def _workload_cache_path(cache_dir: str, key_fields: tuple) -> str:
    digest = hashlib.sha256(repr(key_fields).encode("utf-8")).hexdigest()[:24]
    return os.path.join(cache_dir, f"workload_{digest}.npz")


def _load_cached_blocks(
    path: str, max_ranks: int
) -> list[tuple[Rect, np.ndarray, np.ndarray]] | None:
    """Read a cached block set; ``None`` on any miss/corruption."""
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            rects = archive["rects"]
            if rects.shape != (max_ranks, 4):
                return None
            blocks: list[tuple[Rect, np.ndarray, np.ndarray]] = []
            for n in range(max_ranks):
                rect = Rect(*(int(v) for v in rects[n]))
                if rect.is_empty:
                    blocks.append((rect, np.empty((0, 0)), np.empty((0, 0))))
                else:
                    blocks.append((rect, archive[f"i{n}"], archive[f"a{n}"]))
    except (OSError, KeyError, ValueError, zipfile_error):
        return None
    touch(path)  # LRU recency: a hit protects the entry from eviction
    return blocks


def _store_cached_blocks(
    path: str, blocks: list[tuple[Rect, np.ndarray, np.ndarray]]
) -> None:
    """Atomically persist a rendered block set next to ``path``."""
    arrays: dict[str, np.ndarray] = {
        "rects": np.asarray(
            [[r.y0, r.x0, r.y1, r.x1] for r, _, _ in blocks], dtype=np.int64
        )
    }
    for n, (rect, block_i, block_a) in enumerate(blocks):
        if not rect.is_empty:
            arrays[f"i{n}"] = block_i
            arrays[f"a{n}"] = block_a
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    # Must end in .npz or np.savez appends the suffix and breaks the rename.
    tmp = path + ".tmp.npz"
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    except OSError:
        # Cache is best-effort; never fail the render over it.
        if os.path.exists(tmp):
            os.remove(tmp)
        return
    enforce_cache_budget(os.path.dirname(path) or ".", keep=path)


@dataclass
class RenderedWorkload:
    """One (dataset, image size, viewpoint) workload rendered at the
    finest partition, ready to be assembled for any smaller ``P``."""

    dataset: str
    image_size: int
    max_ranks: int
    rotation: tuple[float, float, float] = DEFAULT_ROTATION
    volume_shape: tuple[int, int, int] | None = None
    step: float = 1.0
    #: On-disk cache directory; ``None`` reads ``REPRO_CACHE_DIR``.
    cache_dir: str | None = None

    camera: Camera = field(init=False)
    plan_max: PartitionPlan = field(init=False)
    blocks: list[tuple[Rect, np.ndarray, np.ndarray]] = field(init=False)
    _subimage_cache: dict[int, list[SubImage]] = field(init=False, default_factory=dict)
    _plan_cache: dict[int, PartitionPlan] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.max_ranks):
            raise ConfigurationError(f"max_ranks must be a power of two, got {self.max_ranks}")
        volume, transfer = make_dataset(self.dataset, self.volume_shape)
        self.camera = Camera(
            width=self.image_size,
            height=self.image_size,
            volume_shape=volume.shape,
            rot_x=self.rotation[0],
            rot_y=self.rotation[1],
            rot_z=self.rotation[2],
            step=self.step,
        )
        self.plan_max = recursive_bisect(volume.shape, self.max_ranks)

        cache_dir = self.cache_dir if self.cache_dir is not None else render_cache_dir()
        cache_path = None
        if cache_dir is not None:
            key = (
                _CACHE_VERSION,
                "raycast",
                self.dataset,
                self.image_size,
                self.max_ranks,
                tuple(self.rotation),
                tuple(volume.shape),
                self.step,
            )
            cache_path = _workload_cache_path(cache_dir, key)
            cached = _load_cached_blocks(cache_path, self.max_ranks)
            if cached is not None:
                perf.incr("harness.disk_cache_hits")
                self.blocks = cached
                self._plan_cache[self.max_ranks] = self.plan_max
                return
            perf.incr("harness.disk_cache_misses")

        self.blocks = []
        with perf.timer("harness.render_blocks"):
            for block in range(self.max_ranks):
                img = render_subvolume(
                    volume, transfer, self.camera, self.plan_max.extent(block)
                )
                rect = img.bounding_rect()
                if rect.is_empty:
                    self.blocks.append((rect, np.empty((0, 0)), np.empty((0, 0))))
                else:
                    rows, cols = rect.slices()
                    self.blocks.append(
                        (rect, img.intensity[rows, cols].copy(), img.opacity[rows, cols].copy())
                    )
        if cache_path is not None:
            _store_cached_blocks(cache_path, self.blocks)
            perf.incr("harness.disk_cache_stores")
        self._plan_cache[self.max_ranks] = self.plan_max

    # ---- per-P assembly ------------------------------------------------------
    def plan_for(self, num_ranks: int) -> PartitionPlan:
        """Bisection plan for ``num_ranks`` (a prefix of the finest tree)."""
        plan = self._plan_cache.get(num_ranks)
        if plan is None:
            volume, _ = make_dataset(self.dataset, self.volume_shape)
            plan = recursive_bisect(volume.shape, num_ranks)
            self._plan_cache[num_ranks] = plan
        return plan

    def subimages_for(self, num_ranks: int) -> list[SubImage]:
        """Per-rank rendered subimages for ``num_ranks <= max_ranks``."""
        cached = self._subimage_cache.get(num_ranks)
        if cached is not None:
            return cached
        if not is_power_of_two(num_ranks) or num_ranks > self.max_ranks:
            raise ConfigurationError(
                f"num_ranks must be a power of two <= {self.max_ranks}, got {num_ranks}"
            )
        shift = log2_int(self.max_ranks) - log2_int(num_ranks)
        groups: dict[int, list[int]] = defaultdict(list)
        for block in range(self.max_ranks):
            groups[block >> shift].append(block)

        view_dir = self.camera.view_dir
        images: list[SubImage] = []
        for rank in range(num_ranks):
            members = groups[rank]
            # Front-to-back order of this rank's blocks along the view.
            members.sort(
                key=lambda m: (float(self.plan_max.extent(m).center @ view_dir), m)
            )
            acc = SubImage.blank(self.image_size, self.image_size)
            for member in reversed(members):  # fold back-to-front
                rect, block_i, block_a = self.blocks[member]
                if rect.is_empty:
                    continue
                composite_rect_pixels(acc, rect, block_i, block_a, local_in_front=False)
            images.append(acc)
        if num_ranks <= 8 or self.image_size <= 256:
            self._subimage_cache[num_ranks] = images
        return images


# Module-level workload cache (workloads are expensive to render).
_WORKLOADS: dict[tuple, RenderedWorkload] = {}


def workload(
    dataset: str,
    image_size: int,
    *,
    max_ranks: int = 64,
    rotation: tuple[float, float, float] = DEFAULT_ROTATION,
    volume_shape: tuple[int, int, int] | None = None,
    step: float = 1.0,
    cache_dir: str | None = None,
) -> RenderedWorkload:
    """Fetch (rendering if needed) a cached :class:`RenderedWorkload`.

    ``cache_dir`` opts into the cross-process on-disk cache explicitly;
    by default the ``REPRO_CACHE_DIR`` environment variable governs it.
    """
    key = (dataset, image_size, max_ranks, tuple(rotation), volume_shape, step)
    found = _WORKLOADS.get(key)
    if found is None:
        found = RenderedWorkload(
            dataset=dataset,
            image_size=image_size,
            max_ranks=max_ranks,
            rotation=tuple(rotation),  # type: ignore[arg-type]
            volume_shape=volume_shape,
            step=step,
            cache_dir=cache_dir,
        )
        _WORKLOADS[key] = found
    else:
        perf.incr("harness.memory_cache_hits")
    return found


def clear_workload_cache() -> None:
    """Drop all cached renders (frees memory between experiment suites)."""
    _WORKLOADS.clear()


def run_method(
    work: RenderedWorkload,
    method: str,
    num_ranks: int,
    *,
    machine: MachineModel = SP2,
    network=None,
    engine: str = "event",
    **method_options,
) -> tuple[MethodMeasurement, CompositingRun]:
    """Composite one workload with one method at one processor count.

    ``network`` (a :class:`~repro.cluster.model.Network` or ``None`` for
    the flat link) and ``engine`` select the simulator's topology and
    scheduler; see :func:`repro.pipeline.system.run_compositing`.
    """
    images = work.subimages_for(num_ranks)
    plan = work.plan_for(num_ranks)
    run = run_compositing(
        images, method, plan, work.camera.view_dir, machine,
        network=network, engine=engine, **method_options,
    )
    row = measure(
        run.stats,
        method=run.compositor.name,
        dataset=work.dataset,
        image_size=work.image_size,
    )
    return row, run


def run_grid(
    datasets: Sequence[str],
    image_size: int,
    rank_counts: Sequence[int],
    methods: Sequence[str],
    *,
    machine: MachineModel = SP2,
    rotation: tuple[float, float, float] = DEFAULT_ROTATION,
    volume_shape: tuple[int, int, int] | None = None,
    max_ranks: int | None = None,
    step: float = 1.0,
    verbose: bool = False,
    method_options: Mapping[str, Mapping] | None = None,
    network=None,
    engine: str = "event",
    pool=None,
) -> list[MethodMeasurement]:
    """Run the full (dataset x P x method) grid — the Tables 1/2 engine.

    ``method_options`` maps a method name to extra factory keywords for
    that method's runs (e.g. ``{"radix-k:rect-rle": {"radix": (4, 4)}}``),
    so schedule ablations sweep through the same grid.  ``network`` and
    ``engine`` apply the same topology/scheduler to every cell.

    ``pool`` (a :class:`repro.serving.WorkerPool`) runs the grid's
    method cells through a shared bounded executor instead of inline —
    the same pool a :class:`repro.serving.RenderService` rations its
    interactive sessions over, so a batch sweep and live jobs share one
    admission bound.  Rendering stays sequential per dataset/P (the
    workload memo is shared); rows come back in grid order either way.
    """
    top = max_ranks if max_ranks is not None else max(rank_counts)
    per_method = dict(method_options or {})
    rows: list[MethodMeasurement] = []
    for dataset in datasets:
        work = workload(
            dataset,
            image_size,
            max_ranks=top,
            rotation=rotation,
            volume_shape=volume_shape,
            step=step,
        )
        for num_ranks in rank_counts:
            cell_rows: list[MethodMeasurement]
            if pool is not None:
                futures = [
                    pool.submit(
                        run_method,
                        work, method, num_ranks, machine=machine,
                        network=network, engine=engine,
                        **per_method.get(method, {}),
                    )
                    for method in methods
                ]
                cell_rows = [future.result()[0] for future in futures]
            else:
                cell_rows = [
                    run_method(
                        work, method, num_ranks, machine=machine,
                        network=network, engine=engine,
                        **per_method.get(method, {}),
                    )[0]
                    for method in methods
                ]
            for row in cell_rows:
                rows.append(row)
                if verbose:
                    print(
                        f"  {dataset:12s} P={row.num_ranks:<3d} {row.method:6s} "
                        f"T_total={row.t_total * 1e3:9.2f} ms  M_max={row.mmax_bytes}"
                    )
    return rows


# ---- persistence --------------------------------------------------------------
def rows_to_json(rows: Iterable[MethodMeasurement]) -> str:
    return json.dumps([row.as_dict() for row in rows], indent=2)


def rows_from_json(text: str) -> list[MethodMeasurement]:
    return [MethodMeasurement.from_dict(item) for item in json.loads(text)]


def save_rows(rows: Iterable[MethodMeasurement], path: str | os.PathLike) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(rows_to_json(rows))


def load_rows(path: str | os.PathLike) -> list[MethodMeasurement]:
    with open(path, "r", encoding="utf-8") as fh:
        return rows_from_json(fh.read())
