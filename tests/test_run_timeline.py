"""The unified run-timeline JSON schema (same document from every backend)."""

import json

import pytest

from repro.cluster.backend import MPBackend, SimBackend
from repro.cluster.model import SP2
from repro.cluster.run_timeline import TIMELINE_SCHEMA, RunTimeline
from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.pipeline.system import SortLastSystem

SMALL = dict(dataset="sphere", volume_shape=(16, 16, 16), image_size=24, num_ranks=2)


async def _traffic_program(ctx):
    ctx.begin_stage(0)
    await ctx.sendrecv(ctx.rank ^ 1, b"z" * (10 + ctx.rank), tag=1)
    await ctx.charge_encode(33)
    return ctx.rank


def _sim_timeline(**meta) -> RunTimeline:
    return SimBackend().run(2, _traffic_program, model=SP2, trace=True).timeline(meta)


class TestRoundTrip:
    def test_json_roundtrip_preserves_everything(self):
        timeline = _sim_timeline(dataset="unit", purpose="roundtrip")
        clone = RunTimeline.from_json(timeline.to_json())
        assert clone.to_dict() == timeline.to_dict()
        assert clone.backend == "sim" and clone.clock == "modelled"
        assert clone.meta == {"dataset": "unit", "purpose": "roundtrip"}
        assert len(clone.trace_events) == len(timeline.trace_events) > 0

    def test_save_load(self, tmp_path):
        path = tmp_path / "timeline.json"
        timeline = _sim_timeline()
        timeline.save(path)
        loaded = RunTimeline.load(path)
        assert loaded.to_dict() == timeline.to_dict()
        # And the on-disk document is plain JSON with the schema marker.
        raw = json.loads(path.read_text())
        assert raw["schema"] == TIMELINE_SCHEMA

    def test_unknown_schema_rejected(self):
        data = _sim_timeline().to_dict()
        data["schema"] = "repro.run-timeline/999"
        with pytest.raises(ConfigurationError, match="schema"):
            RunTimeline.from_dict(data)

    def test_stats_view_reduces_like_a_run_result(self):
        timeline = _sim_timeline()
        view = timeline.stats_view()
        assert view.num_ranks == 2
        assert view.mmax_bytes == 11  # rank 0 received rank 1's 11 bytes
        assert view.counter_total("encode") == 66


class TestBackendUniformity:
    def test_same_program_same_document_shape(self):
        sim = SimBackend().run(2, _traffic_program, model=SP2).timeline()
        mp = MPBackend().run(2, _traffic_program).timeline()
        sim_doc, mp_doc = sim.to_dict(), mp.to_dict()
        assert sim_doc.keys() == mp_doc.keys()
        for sim_rank, mp_rank in zip(sim_doc["ranks"], mp_doc["ranks"]):
            assert sim_rank.keys() == mp_rank.keys()
            sim_bytes = [
                (s["stage"], s["bytes_sent"], s["bytes_recv"])
                for s in sim_rank["stages"]
            ]
            mp_bytes = [
                (s["stage"], s["bytes_sent"], s["bytes_recv"])
                for s in mp_rank["stages"]
            ]
            assert sim_bytes == mp_bytes

    def test_wall_clock_fields_populated_only_on_real_transports(self):
        sim = SimBackend().run(2, _traffic_program, model=SP2).timeline()
        mp = MPBackend().run(2, _traffic_program).timeline()
        assert all(w == 0.0 for w in sim.wall_times)
        assert all(w > 0.0 for w in mp.wall_times)
        assert all(not p for p in sim.rank_perf)
        assert all("timers" in p for p in mp.rank_perf)


class TestSystemTimeline:
    @pytest.mark.parametrize("backend", ["sim", "mp"])
    def test_pipeline_emits_a_loadable_timeline(self, backend, tmp_path):
        cfg = RunConfig(method="bsbrc", backend=backend, **SMALL)
        result = SortLastSystem(cfg).run()
        assert result.timeline is not None
        assert result.timeline.backend == backend
        assert result.timeline.meta["method"] == "bsbrc"
        path = tmp_path / f"{backend}.json"
        result.timeline.save(path)
        assert RunTimeline.load(path).to_dict() == result.timeline.to_dict()
