#!/usr/bin/env python
"""Compare every compositing method on one workload across processor counts.

Reproduces the paper's core comparison (BS vs BSBR vs BSLC vs BSBRC) and
extends it with the related-work baselines (direct send, binary tree,
parallel pipeline).  Prints a table of T_comp / T_comm / T_total / M_max
per method and processor count, plus the speedup over plain binary swap.

Usage:
    python examples/compare_methods.py [--dataset cube] [--full]
"""

import argparse
import sys

from repro import PAPER_DATASETS, available_methods
from repro.analysis.tables import format_generic
from repro.experiments.harness import run_method, workload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="engine_high", choices=sorted(PAPER_DATASETS))
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    parser.add_argument(
        "--methods",
        nargs="*",
        default=list(available_methods()),
        help=f"methods to compare (default: all of {available_methods()})",
    )
    args = parser.parse_args(argv)

    if args.full:
        image_size, volume_shape, ranks, max_ranks = 384, None, (2, 8, 32, 64), 64
    else:
        image_size, volume_shape, ranks, max_ranks = 96, (64, 64, 28), (2, 4, 8), 8

    print(f"Rendering {args.dataset} at {image_size}x{image_size} ...")
    work = workload(
        args.dataset, image_size, max_ranks=max_ranks, volume_shape=volume_shape
    )

    rows = []
    bs_total = {}
    for num_ranks in ranks:
        for method in args.methods:
            measurement, _ = run_method(work, method, num_ranks)
            if method == "bs":
                bs_total[num_ranks] = measurement.t_total
            rows.append((num_ranks, method, measurement))

    print(f"\nCompositing {args.dataset} on the simulated SP2:\n")
    table_rows = []
    for num_ranks, method, m in rows:
        base = bs_total.get(num_ranks)
        speed = f"{base / m.t_total:5.2f}x" if base else "   - "
        table_rows.append(
            (
                num_ranks,
                method,
                f"{m.t_comp * 1e3:9.2f}",
                f"{m.t_comm * 1e3:8.2f}",
                f"{m.t_total * 1e3:9.2f}",
                m.mmax_bytes,
                speed,
            )
        )
    print(
        format_generic(
            ["P", "method", "T_comp ms", "T_comm ms", "T_total ms", "M_max B", "vs BS"],
            table_rows,
        )
    )

    print(
        "\nReading guide: BS ships every pixel (content-independent, worst);"
        "\nBSBR ships bounding rectangles (hurt by sparse rects); BSLC ships"
        "\nRLE'd non-blank pixels but re-scans its whole half every stage;"
        "\nBSBRC runs the RLE only inside the rectangle — the paper's winner."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
