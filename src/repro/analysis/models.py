"""The paper's analytic cost model — eqs. (1)-(8) in executable form.

Given a machine model and the *observed* per-stage sparsity quantities
(``A_rec^k``, ``A_opaque^k``, ``R_code^k``, ``A_send^k``), these
functions predict per-processor computation and communication time for
each method.  The harness cross-checks them against the simulated
execution: because the simulator charges the very same constants, the
predictions must agree up to synchronization skew (which the analytic
model ignores but real — and simulated — runs include in ``T_comm``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.model import MachineModel
from ..cluster.topology import log2_int
from ..types import PIXEL_BYTES, RECT_INFO_BYTES, RLE_CODE_BYTES

__all__ = [
    "StageObservation",
    "predict_bs",
    "predict_bsbr",
    "predict_bslc",
    "predict_bsbrc",
    "Prediction",
]


@dataclass(frozen=True)
class StageObservation:
    """Sparsity quantities of one compositing stage for one rank.

    ``a_rec``    — pixels inside the receiving bounding rectangle
    (``A_rec^k``), 0 when empty;
    ``a_opaque`` — non-blank pixels received (``A_opaque^k``);
    ``r_code``   — run-length code elements received (``R_code^k``);
    ``a_send``   — pixels inside the sending bounding rectangle
    (``A_send^k``).
    """

    a_rec: int = 0
    a_opaque: int = 0
    r_code: int = 0
    a_send: int = 0


@dataclass(frozen=True)
class Prediction:
    """Predicted per-processor times for one method (seconds)."""

    t_comp: float
    t_comm: float

    @property
    def t_total(self) -> float:
        return self.t_comp + self.t_comm


def predict_bs(model: MachineModel, num_pixels: int, num_ranks: int) -> Prediction:
    """Eqs. (1)-(2): plain binary swap."""
    stages = log2_int(num_ranks)
    t_comp = 0.0
    t_comm = 0.0
    for k in range(1, stages + 1):
        half = num_pixels // (2**k)
        t_comp += model.to * half
        t_comm += model.ts + PIXEL_BYTES * half * model.tc
    return Prediction(t_comp=t_comp, t_comm=t_comm)


def predict_bsbr(
    model: MachineModel, num_pixels: int, observations: list[StageObservation]
) -> Prediction:
    """Eqs. (3)-(4): bounding rectangle.

    ``observations[k]`` supplies ``A_rec^k`` (0 when the receiving
    rectangle is empty, which zeroes the pixel terms — the ``[B(k)]``
    indicator).
    """
    t_comp = model.tbound * num_pixels
    t_comm = 0.0
    for obs in observations:
        t_comp += model.to * obs.a_rec
        t_comm += model.ts + (RECT_INFO_BYTES + PIXEL_BYTES * obs.a_rec) * model.tc
    return Prediction(t_comp=t_comp, t_comm=t_comm)


def predict_bslc(
    model: MachineModel,
    num_pixels: int,
    observations: list[StageObservation],
) -> Prediction:
    """Eqs. (5)-(6): RLE + static load balancing.

    The encode term scans the whole sending half (``A/2^k``); the wire
    carries the observed code elements and non-blank pixels.
    """
    t_comp = 0.0
    t_comm = 0.0
    for k, obs in enumerate(observations, start=1):
        half = num_pixels // (2**k)
        t_comp += model.tencode * half + model.to * obs.a_opaque
        t_comm += model.ts + (
            RLE_CODE_BYTES * obs.r_code + PIXEL_BYTES * obs.a_opaque
        ) * model.tc
    return Prediction(t_comp=t_comp, t_comm=t_comm)


def predict_bsbrc(
    model: MachineModel,
    num_pixels: int,
    observations: list[StageObservation],
) -> Prediction:
    """Eqs. (7)-(8): bounding rectangle + RLE inside it."""
    t_comp = model.tbound * num_pixels
    t_comm = 0.0
    for obs in observations:
        t_comp += model.tencode * obs.a_send + model.to * obs.a_opaque
        t_comm += model.ts + (
            RECT_INFO_BYTES + RLE_CODE_BYTES * obs.r_code + PIXEL_BYTES * obs.a_opaque
        ) * model.tc
    return Prediction(t_comp=t_comp, t_comm=t_comm)
