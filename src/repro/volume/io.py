"""Volume and image I/O helpers.

Volumes round-trip through compressed ``.npz``; final images are written
as binary PGM (grayscale, what the paper's 8-bit gray-level renderer
produced) so results can be inspected with any image viewer and diffed
byte-for-byte in tests.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigurationError
from .grid import VolumeGrid

__all__ = ["save_volume", "load_volume", "write_pgm", "read_pgm", "to_gray8"]


def save_volume(grid: VolumeGrid, path: str | os.PathLike) -> None:
    """Write a volume to compressed ``.npz`` (fields: data, name)."""
    np.savez_compressed(path, data=grid.data, name=np.asarray(grid.name))


def load_volume(path: str | os.PathLike) -> VolumeGrid:
    """Inverse of :func:`save_volume`."""
    with np.load(path, allow_pickle=False) as archive:
        if "data" not in archive:
            raise ConfigurationError(f"{path!s} is not a saved volume (missing 'data')")
        name = str(archive["name"]) if "name" in archive else "volume"
        return VolumeGrid(data=archive["data"], name=name)


def to_gray8(plane: np.ndarray, *, gain: float = 1.0) -> np.ndarray:
    """Map a float intensity plane to uint8 grayscale with clipping."""
    return np.clip(np.asarray(plane, dtype=np.float64) * gain * 255.0, 0.0, 255.0).astype(
        np.uint8
    )


def write_pgm(path: str | os.PathLike, gray: np.ndarray) -> None:
    """Write a uint8 grayscale image as binary PGM (P5)."""
    gray = np.asarray(gray)
    if gray.ndim != 2 or gray.dtype != np.uint8:
        raise ConfigurationError(
            f"write_pgm expects a 2-D uint8 array, got {gray.dtype} shape {gray.shape}"
        )
    height, width = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        fh.write(gray.tobytes())


def read_pgm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PGM (P5) written by :func:`write_pgm`."""
    with open(path, "rb") as fh:
        blob = fh.read()
    parts = blob.split(b"\n", 3)
    if len(parts) < 4 or parts[0] != b"P5":
        raise ConfigurationError(f"{path!s} is not a binary PGM file")
    width, height = (int(tok) for tok in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ConfigurationError(f"unsupported PGM maxval {maxval}")
    pixels = np.frombuffer(parts[3][: width * height], dtype=np.uint8)
    if pixels.size != width * height:
        raise ConfigurationError(f"{path!s} truncated: {pixels.size} of {width * height} bytes")
    return pixels.reshape(height, width).copy()
