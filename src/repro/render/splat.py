"""Sheet splatting renderer (Westover 1991) — paper §5 future work #2.

The paper plans to "implement the parallel splatting volume rendering
method"; this module provides it as a drop-in alternative to the ray
caster.  Classic axis-aligned sheet splatting: voxels are processed in
sheets perpendicular to the dominant view axis, front to back; each
visible voxel deposits a Gaussian footprint at its projected position
(implemented as a bilinear scatter followed by one Gaussian convolution
per sheet — all footprints are identical under orthographic projection),
and sheets are *over*-composited.

Distributed caveat (documented, tested): footprints spill a kernel
radius across block boundaries that are *perpendicular* to the sheets,
so compositing per-block splat renders reproduces the full-volume splat
only approximately near those boundaries (the sheets themselves are
additive, and *over* is not addition).  Boundaries along the dominant
axis are exact.  This is the well-known sort-last splatting seam
artifact; ``tests/test_splat.py`` bounds it.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import RenderError
from ..types import Extent3
from ..volume.grid import VolumeGrid
from ..volume.transfer import TransferFunction
from .camera import Camera
from .image import SubImage

__all__ = ["splat_subvolume", "splat_full", "dominant_axis"]

#: Opacity ceiling per sheet (keeps over-compositing well conditioned
#: when footprints overlap heavily inside one sheet).
_ALPHA_CEIL = 0.995


def dominant_axis(view_dir: np.ndarray) -> int:
    """Volume axis most aligned with the view direction (sheet normal)."""
    return int(np.argmax(np.abs(np.asarray(view_dir, dtype=np.float64))))


def splat_subvolume(
    volume: VolumeGrid,
    transfer: TransferFunction,
    camera: Camera,
    extent: Extent3 | None = None,
    *,
    kernel_sigma: float = 0.7,
) -> SubImage:
    """Splat ``extent`` of ``volume`` into a full-frame subimage.

    ``kernel_sigma`` is the Gaussian footprint radius in *world* (voxel)
    units; it is converted to pixels with the camera scale.
    """
    if tuple(camera.volume_shape) != volume.shape:
        raise RenderError(
            f"camera built for volume shape {camera.volume_shape}, got {volume.shape}"
        )
    if kernel_sigma <= 0:
        raise RenderError(f"kernel_sigma must be > 0, got {kernel_sigma}")
    if extent is None:
        extent = volume.full_extent()
    image = SubImage.blank(camera.height, camera.width)
    if extent.is_empty:
        return image

    view_dir = camera.view_dir
    axis = dominant_axis(view_dir)
    front_to_back_ascending = float(view_dir[axis]) > 0.0

    lo = (extent.x0, extent.y0, extent.z0)
    hi = (extent.x1, extent.y1, extent.z1)
    sheet_indices = range(lo[axis], hi[axis])
    if not front_to_back_ascending:
        sheet_indices = reversed(sheet_indices)

    # In-sheet voxel center coordinates (the two non-dominant axes).
    other = [a for a in range(3) if a != axis]
    grids = np.meshgrid(
        np.arange(lo[other[0]], hi[other[0]], dtype=np.float64) + 0.5,
        np.arange(lo[other[1]], hi[other[1]], dtype=np.float64) + 0.5,
        indexing="ij",
    )
    sigma_px = kernel_sigma / camera.pixel_scale

    acc_i = image.intensity
    acc_a = image.opacity
    height, width = acc_i.shape
    for sheet in sheet_indices:
        block = _sheet_values(volume.data, extent, axis, sheet)
        emission, alpha = transfer.classify(block)
        visible = alpha > 0.0
        if not visible.any():
            continue

        centers = np.empty((int(visible.sum()), 3), dtype=np.float64)
        centers[:, axis] = sheet + 0.5
        centers[:, other[0]] = grids[0][visible]
        centers[:, other[1]] = grids[1][visible]
        rows_cols = camera.project_points(centers)

        sheet_i = np.zeros((height, width), dtype=np.float64)
        sheet_a = np.zeros((height, width), dtype=np.float64)
        _bilinear_scatter(
            sheet_i, sheet_a,
            rows_cols[:, 0], rows_cols[:, 1],
            (emission[visible] * alpha[visible]).ravel(),
            alpha[visible].ravel(),
        )
        if sigma_px > 1e-3:
            ndimage.gaussian_filter(sheet_i, sigma_px, output=sheet_i, mode="constant")
            ndimage.gaussian_filter(sheet_a, sigma_px, output=sheet_a, mode="constant")
        np.clip(sheet_a, 0.0, _ALPHA_CEIL, out=sheet_a)

        # over: sheet (front-so-far accumulated is acc; new sheet is behind)
        trans = 1.0 - acc_a
        acc_i += trans * sheet_i
        acc_a += trans * sheet_a
    return image


def splat_full(
    volume: VolumeGrid, transfer: TransferFunction, camera: Camera, **kwargs
) -> SubImage:
    """Splat the entire volume (sequential reference)."""
    return splat_subvolume(volume, transfer, camera, volume.full_extent(), **kwargs)


# ---------------------------------------------------------------------------
def _sheet_values(
    data: np.ndarray, extent: Extent3, axis: int, sheet: int
) -> np.ndarray:
    """The 2-D scalar slab of ``extent`` at index ``sheet`` along ``axis``."""
    sx, sy, sz = extent.slices()
    if axis == 0:
        return data[sheet, sy, sz]
    if axis == 1:
        return data[sx, sheet, sz]
    return data[sx, sy, sheet]


def _bilinear_scatter(
    grid_i: np.ndarray,
    grid_a: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values_i: np.ndarray,
    values_a: np.ndarray,
) -> None:
    """Deposit values at continuous (row, col) positions bilinearly."""
    height, width = grid_i.shape
    r0 = np.floor(rows).astype(np.int64)
    c0 = np.floor(cols).astype(np.int64)
    fr = rows - r0
    fc = cols - c0
    for dr, dc, weight in (
        (0, 0, (1 - fr) * (1 - fc)),
        (0, 1, (1 - fr) * fc),
        (1, 0, fr * (1 - fc)),
        (1, 1, fr * fc),
    ):
        rr = r0 + dr
        cc = c0 + dc
        inside = (rr >= 0) & (rr < height) & (cc >= 0) & (cc < width)
        if not inside.any():
            continue
        np.add.at(grid_i, (rr[inside], cc[inside]), values_i[inside] * weight[inside])
        np.add.at(grid_a, (rr[inside], cc[inside]), values_a[inside] * weight[inside])
